"""Network transport tests: wire protocol, HTTP server, remote client.

The parity class runs the serving-layer behavioural scenarios through a
parametrized client fixture — once with the in-process
:class:`NavigationClient`, once with :class:`RemoteNavigationClient` over a
real socket — so the two transports can only pass together.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.config import TaskSpec
from repro.errors import (
    JobFailedError,
    ProtocolError,
    ServingError,
    UnknownJobError,
)
from repro.serving import (
    JobStatus,
    NavigationClient,
    NavigationRequest,
    NavigationServer,
)
from repro.serving.transport import (
    IDEMPOTENCY_HEADER,
    PROTOCOL_VERSION,
    TENANT_HEADER,
    NavigationHTTPServer,
    RemoteNavigationClient,
)
from repro.serving.transport.protocol import (
    SubmitRequest,
    check_protocol,
    decode_error,
    encode_error,
)
from repro.serving.types import JobResult


def _task(**kwargs) -> TaskSpec:
    kwargs.setdefault("dataset", "tiny")
    kwargs.setdefault("arch", "sage")
    kwargs.setdefault("epochs", 1)
    return TaskSpec(**kwargs)


def _request(task: TaskSpec, **kwargs) -> NavigationRequest:
    kwargs.setdefault("budget", 8)
    kwargs.setdefault("profile_epochs", 1)
    return NavigationRequest(task=task, **kwargs)


@pytest.fixture()
def stack(small_graph, tmp_path):
    """A NavigationServer plus its HTTP transport; torn down in order."""
    server = NavigationServer(
        workers=2,
        graphs={"tiny": small_graph},
        cache_dir=str(tmp_path / "store"),
    )
    http = NavigationHTTPServer(server)
    http.start()
    yield server, http
    http.stop()
    server.stop()


@pytest.fixture(params=["inprocess", "http"])
def client(request, stack):
    """The same tenant surface over both transports (the parity fixture)."""
    server, http = stack
    if request.param == "inprocess":
        return NavigationClient(server, tenant="team-a")
    return RemoteNavigationClient(http.url, tenant="team-a")


def _post(url: str, body, headers: dict | None = None):
    """Raw POST; returns (status, payload) without raising on HTTP errors."""
    data = body if isinstance(body, bytes) else json.dumps(body).encode()
    request = urllib.request.Request(url, data=data, method="POST")
    request.add_header("Content-Type", "application/json")
    for name, value in (headers or {}).items():
        request.add_header(name, value)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


class TestClientParity:
    """tests/test_serving.py behavioural scenarios, over both transports."""

    def test_submit_result_and_snapshot(self, client):
        handle = client.submit(_task(), budget=8, profile_epochs=1)
        result = handle.result(timeout=240)
        assert "balance" in result.guidelines
        assert result.report.num_ground_truth > 0
        assert result.perf is None  # train not requested
        assert handle.done
        assert handle.status is JobStatus.DONE
        snapshot = handle.snapshot()
        assert snapshot.status is JobStatus.DONE
        assert snapshot.tenant == "team-a"
        assert snapshot.finished_at is not None

    def test_submit_many_in_order(self, client):
        handles = client.submit_many(
            [_request(_task()), _request(_task(), priorities=("ex_tm",))]
        )
        results = [h.result(timeout=240) for h in handles]
        assert [h.job_id for h in handles] == ["job-0000", "job-0001"]
        assert set(results[0].guidelines) == {"balance"}
        assert set(results[1].guidelines) == {"ex_tm"}

    def test_navigate_convenience(self, client):
        result = client.navigate(
            _task(), budget=8, profile_epochs=1, timeout=240
        )
        assert "balance" in result.guidelines

    def test_failed_job_raises_typed_error(self, client):
        handle = client.submit(
            _task(dataset="no-such-dataset"), budget=8, profile_epochs=1
        )
        with pytest.raises(JobFailedError) as excinfo:
            handle.result(timeout=60)
        assert excinfo.value.job_id == handle.job_id
        assert "no-such-dataset" in excinfo.value.message
        # the server-side traceback crosses the transport intact
        assert "Traceback" in (excinfo.value.traceback or "")
        # a typed failure is still a ServingError for coarse handlers
        assert isinstance(excinfo.value, ServingError)

    def test_unknown_job_id(self, client):
        handle = client.submit(_task(), budget=8, profile_epochs=1)
        owner = getattr(handle, "server", None) or handle.client
        bogus = type(handle)(owner, "job-9999")
        with pytest.raises(UnknownJobError):
            bogus.status  # noqa: B018 — the property raises
        with pytest.raises(UnknownJobError):
            bogus.result(timeout=1)

    def test_cancel_after_done_is_noop(self, client):
        handle = client.submit(_task(), budget=8, profile_epochs=1)
        handle.result(timeout=240)
        assert handle.cancel() is False
        assert handle.status is JobStatus.DONE

    def test_result_timeout(self, client):
        handle = client.submit(_task(), budget=8, profile_epochs=1)
        with pytest.raises(ServingError, match="timed out"):
            handle.result(timeout=0.0)
        # and the job still completes afterwards
        assert handle.result(timeout=240) is not None
        # timeout=0 on a terminal job is the non-blocking "get if ready"
        # probe on both transports — it returns, never times out
        assert handle.result(timeout=0.0) is not None


class TestRemoteClient:
    def test_health_and_stats(self, stack):
        server, http = stack
        client = RemoteNavigationClient(http.url)
        health = client.health()
        assert health["ok"] and health["protocol"] == PROTOCOL_VERSION
        client.submit(_task(), budget=8, profile_epochs=1).result(timeout=240)
        stats = client.stats()
        assert stats.profiling["executed"] == server.stats.executed > 0
        assert stats.store["persistent"] is True
        assert stats.store["entries"] == len(server.store)
        assert stats.jobs["done"] == 1

    def test_unknown_job_maps_to_404_and_typed_error(self, stack):
        _, http = stack
        client = RemoteNavigationClient(http.url)
        with pytest.raises(UnknownJobError, match="job-9999"):
            client.status("job-9999")
        with pytest.raises(UnknownJobError):
            client.result("job-9999", timeout=1)
        with pytest.raises(UnknownJobError):
            client.cancel("job-9999")

    def test_drain_and_jobs_listing(self, stack):
        _, http = stack
        client = RemoteNavigationClient(http.url, tenant="team-b")
        client.submit_many([_request(_task()), _request(_task())])
        snapshots = client.drain(timeout=240)
        assert len(snapshots) == 2
        assert all(s.status is JobStatus.DONE for s in snapshots)
        listed = client.jobs()
        assert [s.job_id for s in listed] == [s.job_id for s in snapshots]
        assert all(s.tenant == "team-b" for s in listed)

    def test_concurrent_remote_clients_share_one_measurement(self, stack):
        server, http = stack
        priorities = ["balance", "ex_tm", "ex_ma"]
        results: list = [None] * len(priorities)
        errors: list = []

        def run(slot: int) -> None:
            try:
                tenant_client = RemoteNavigationClient(
                    http.url, tenant=f"tenant-{slot}"
                )
                results[slot] = tenant_client.navigate(
                    _task(),
                    priorities=(priorities[slot],),
                    budget=8,
                    profile_epochs=1,
                    timeout=240,
                )
            except Exception as exc:  # pragma: no cover — surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(i,))
            for i in range(len(priorities))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # same task + seed behind every tenant: the overlapping Step-2 fold
        # was measured once across all HTTP clients, not once per client
        assert server.stats.executed == results[0].report.num_ground_truth
        for result, priority in zip(results, priorities, strict=True):
            assert set(result.guidelines) == {priority}


class TestWireProtocol:
    def test_malformed_json_is_a_protocol_error(self, stack):
        _, http = stack
        code, payload = _post(f"{http.url}/v1/jobs", b"{not json")
        assert code == 400
        assert payload["error"]["kind"] == "ProtocolError"
        with pytest.raises(ProtocolError):
            raise decode_error(payload["error"])

    def test_non_object_body_rejected(self, stack):
        _, http = stack
        code, payload = _post(f"{http.url}/v1/jobs", [1, 2, 3])
        assert code == 400
        assert payload["error"]["kind"] == "ProtocolError"

    def test_version_mismatch_rejected(self, stack):
        _, http = stack
        body = {"protocol": 999, "request": {"dataset": "tiny"}}
        code, payload = _post(f"{http.url}/v1/jobs", body)
        assert code == 400
        assert "version mismatch" in payload["error"]["message"]

    def test_unknown_endpoint_404(self, stack):
        _, http = stack
        code, payload = _post(f"{http.url}/v1/nonsense", {})
        assert code == 404
        # a wrong version prefix is outside the namespace entirely
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{http.url}/v0/jobs", timeout=10)
        assert excinfo.value.code == 404

    def test_bad_request_spec_is_typed(self, stack):
        _, http = stack
        body = {"request": {"dataset": "tiny", "budgetx": 9}}
        code, payload = _post(f"{http.url}/v1/jobs", body)
        assert code == 400
        assert payload["error"]["kind"] == "ServingError"
        assert "budgetx" in payload["error"]["message"]

    def test_idempotent_submit_replays_original_job(self, stack):
        server, http = stack
        body = {
            "request": {
                "dataset": "tiny",
                "epochs": 1,
                "budget": 8,
                "profile_epochs": 1,
            }
        }
        headers = {IDEMPOTENCY_HEADER: "retry-123"}
        code, first = _post(f"{http.url}/v1/jobs", body, headers)
        assert code == 200 and first["deduplicated"] is False
        code, second = _post(f"{http.url}/v1/jobs", body, headers)
        assert code == 200
        assert second["job_id"] == first["job_id"]
        assert second["deduplicated"] is True
        # a different key is a different submission
        code, third = _post(
            f"{http.url}/v1/jobs", body, {IDEMPOTENCY_HEADER: "retry-456"}
        )
        assert third["job_id"] != first["job_id"]
        assert len(server.jobs()) == 2

    def test_tenant_header_names_the_lane(self, stack):
        server, http = stack
        spec = {"dataset": "tiny", "epochs": 1, "budget": 8,
                "profile_epochs": 1}
        _post(
            f"{http.url}/v1/jobs",
            {"request": spec},
            {TENANT_HEADER: "header-tenant"},
        )
        _post(
            f"{http.url}/v1/jobs",
            {"request": {**spec, "tenant": "body-tenant"}},
            {TENANT_HEADER: "header-tenant"},
        )
        tenants = [job.request.tenant for job in server.jobs()]
        assert tenants == ["header-tenant", "body-tenant"]  # body wins

    def test_error_envelope_round_trip(self):
        original = JobFailedError("job-0007", "boom", "Traceback (most...)")
        decoded = decode_error(encode_error(original))
        assert isinstance(decoded, JobFailedError)
        assert decoded.job_id == "job-0007"
        assert decoded.message == "boom"
        assert decoded.traceback == "Traceback (most...)"

    def test_unlisted_error_degrades_to_nearest_ancestor(self):
        class Weird(UnknownJobError):
            pass

        envelope = encode_error(Weird("gone"))
        assert envelope["kind"] == "UnknownJobError"
        # and an envelope can never instantiate an arbitrary class
        hostile = decode_error({"kind": "object", "message": "x"})
        assert isinstance(hostile, ServingError)

    def test_submit_request_validation(self):
        with pytest.raises(ProtocolError):
            SubmitRequest.from_wire({})
        with pytest.raises(ProtocolError):
            SubmitRequest.from_wire({"requests": "not-a-list"})
        with pytest.raises(ProtocolError):
            SubmitRequest.from_wire({"request": "not-an-object"})
        with pytest.raises(ProtocolError):
            SubmitRequest.from_wire(
                {"request": {}, "idempotency_key": 123}
            )
        with pytest.raises(ProtocolError):
            check_protocol({"protocol": 2})
        parsed = SubmitRequest.from_wire(
            {"request": {"dataset": "tiny"}}, header_key="abc"
        )
        assert parsed.idempotency_key == "abc"
        assert parsed.batch is False


class TestResultSerialization:
    def test_job_result_round_trips_through_json(self, stack):
        server, _ = stack
        job_id = server.submit(_request(_task(), train=True))
        original = server.result(job_id, timeout=240)
        clone = JobResult.from_dict(json.loads(json.dumps(original.to_dict())))
        assert set(clone.guidelines) == set(original.guidelines)
        best, best_clone = original.best(), clone.best()
        assert best_clone.config == best.config
        assert best_clone.predicted == best.predicted
        assert best_clone.score == pytest.approx(best.score)
        report, report_clone = original.report, clone.report
        assert report_clone.task == report.task
        assert report_clone.num_ground_truth == report.num_ground_truth
        assert report_clone.exploration.candidates == report.exploration.candidates
        assert report_clone.exploration.stats == report.exploration.stats
        assert report_clone.profile == report.profile
        # the measured training run survives minus the per-batch rows
        assert clone.perf is not None
        assert clone.perf.time_s == pytest.approx(original.perf.time_s)
        assert clone.perf.accuracy == pytest.approx(original.perf.accuracy)
        assert clone.perf.memory.total == pytest.approx(original.perf.memory.total)
        assert len(clone.perf.epochs) == len(original.perf.epochs)
        assert clone.perf.batches == []
