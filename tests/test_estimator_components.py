"""Component tests for estimator feature functions and the accuracy model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TrainingConfig
from repro.errors import EstimatorError
from repro.estimator.accuracy import AccuracyModel, accuracy_features
from repro.estimator.graybox import _hit_features
from repro.graphs.profiling import GraphProfile


def _profile(**overrides) -> GraphProfile:
    base = dict(
        name="p",
        num_nodes=2000,
        num_edges=16000,
        feature_dim=32,
        num_classes=8,
        avg_degree=8.0,
        max_degree=120,
        degree_std=12.0,
        degree_skew=4.0,
        powerlaw_exponent=2.1,
        feature_bytes=256000,
    )
    base.update(overrides)
    return GraphProfile(**base)


class TestAccuracyFeatures:
    def test_eq11_inputs_present(self):
        cfg = TrainingConfig(batch_size=128, hop_list=(5, 3))
        feats = accuracy_features(cfg, _profile(), 800.0, 6400.0)
        # Deg(G_i) = 8.0, Deg(G) = 8.0, ratio 1.0.
        assert feats[0] == pytest.approx(8.0)
        assert feats[1] == pytest.approx(8.0)
        assert feats[2] == pytest.approx(1.0)

    def test_batch_fraction(self):
        cfg = TrainingConfig()
        feats = accuracy_features(cfg, _profile(), 500.0, 2000.0)
        assert feats[4] == pytest.approx(500.0 / 2000.0)

    def test_sampler_onehot_tail(self):
        from repro.config.settings import SAMPLER_NAMES

        cfg = TrainingConfig(sampler="saint", hop_list=(3, 3))
        feats = accuracy_features(cfg, _profile(), 100.0, 400.0)
        onehot = feats[-len(SAMPLER_NAMES):]
        assert onehot[SAMPLER_NAMES.index("saint")] == 1.0
        assert onehot.sum() == 1.0


class TestHitFeatures:
    def test_cache_knobs_encoded(self):
        cfg = TrainingConfig(
            cache_ratio=0.4, cache_policy="lru", batch_order="partition"
        )
        feats = _hit_features(cfg, _profile())
        assert feats[0] == pytest.approx(0.4)
        assert feats[2] == 1.0  # partition order flag

    def test_policy_onehot_exclusive(self):
        for policy, ratio in (("none", 0.0), ("static", 0.3), ("fifo", 0.3), ("lru", 0.3)):
            cfg = TrainingConfig(cache_policy=policy, cache_ratio=ratio)
            feats = _hit_features(cfg, _profile())
            onehot = feats[6:10]
            assert onehot.sum() == 1.0


class TestAccuracyModel:
    def _records(self, n=20):
        """Synthetic records where accuracy depends on batch coverage."""
        from repro.config import TaskSpec
        from repro.runtime.profiler import GroundTruthRecord

        rng = np.random.default_rng(0)
        records = []
        for _ in range(n):
            nodes = float(rng.integers(100, 1900))
            coverage = nodes / 2000.0
            acc = 0.5 + 0.4 * coverage + rng.normal(0, 0.01)
            records.append(
                GroundTruthRecord(
                    config=TrainingConfig(
                        batch_size=int(rng.choice([64, 128, 256]))
                    ),
                    task=TaskSpec(dataset="x", arch="sage", epochs=1),
                    graph_profile=_profile(),
                    time_s=0.01,
                    memory_bytes=1e6,
                    accuracy=float(np.clip(acc, 0, 1)),
                    mean_batch_nodes=nodes,
                    mean_batch_edges=nodes * 8,
                    hit_rate=0.0,
                    t_sample=1e-3,
                    t_transfer=1e-3,
                    t_replace=0.0,
                    t_compute=1e-3,
                    num_batches=4,
                )
            )
        return records

    def test_learns_coverage_trend(self):
        records = self._records()
        model = AccuracyModel().fit(records)
        profile = _profile()
        cfgs = [TrainingConfig(), TrainingConfig()]
        preds = model.predict(
            cfgs, [profile, profile], np.array([200.0, 1800.0]), np.array([1600.0, 14400.0])
        )
        assert preds[1] > preds[0] + 0.1

    def test_predictions_clipped(self):
        records = self._records()
        model = AccuracyModel().fit(records)
        preds = model.predict(
            [TrainingConfig()], [_profile()], np.array([1.0]), np.array([8.0])
        )
        assert 0.0 <= preds[0] <= 1.0

    def test_fit_empty_rejected(self):
        with pytest.raises(EstimatorError):
            AccuracyModel().fit([])

    def test_predict_before_fit(self):
        with pytest.raises(EstimatorError):
            AccuracyModel().predict(
                [TrainingConfig()], [_profile()], np.array([1.0]), np.array([8.0])
            )
