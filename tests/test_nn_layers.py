"""GNN layer and model tests: shapes, gradients, training behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, default_dtype, nll_loss, no_grad
from repro.nn import (
    GATConv,
    GCNConv,
    GNN,
    Linear,
    Propagation,
    SAGEConv,
    build_model,
)
from repro.nn.models import count_parameters
from tests.test_autograd_tensor import check_gradient


def _line_prop(n: int = 5) -> Propagation:
    """Path graph 0-1-...-n-1 as a Propagation."""
    src = np.concatenate([np.arange(n - 1), np.arange(1, n)])
    dst = np.concatenate([np.arange(1, n), np.arange(n - 1)])
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    counts = np.bincount(src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return Propagation(indptr, dst, n)


class TestLinear:
    def test_shapes(self):
        lin = Linear(4, 3, rng=np.random.default_rng(0))
        out = lin(Tensor(np.ones((2, 4))))
        assert out.shape == (2, 3)

    def test_no_bias(self):
        lin = Linear(4, 3, bias=False, rng=np.random.default_rng(0))
        assert lin.bias is None
        assert sum(1 for _ in lin.parameters()) == 1

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_gradient(self):
        with default_dtype(np.float64):
            lin = Linear(3, 2, rng=np.random.default_rng(1))
            check_gradient(lambda t: lin(t), (4, 3), seed=1)


class TestConvLayers:
    @pytest.mark.parametrize("cls", [GCNConv, SAGEConv])
    def test_conv_shapes(self, cls):
        prop = _line_prop(6)
        layer = cls(4, 3, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((6, 4))), prop)
        assert out.shape == (6, 3)

    def test_gat_shapes_concat(self):
        prop = _line_prop(6)
        layer = GATConv(4, 3, heads=2, concat_heads=True, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((6, 4))), prop)
        assert out.shape == (6, 6)

    def test_gat_shapes_mean(self):
        prop = _line_prop(6)
        layer = GATConv(4, 3, heads=2, concat_heads=False, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((6, 4))), prop)
        assert out.shape == (6, 3)

    def test_gat_rejects_bad_heads(self):
        with pytest.raises(ValueError):
            GATConv(4, 3, heads=0)

    @pytest.mark.parametrize("cls", [GCNConv, SAGEConv])
    def test_conv_gradient(self, cls):
        with default_dtype(np.float64):
            prop = _line_prop(5)
            layer = cls(3, 2, rng=np.random.default_rng(2))
            check_gradient(lambda t: layer(t, prop), (5, 3), seed=2)

    def test_gat_gradient(self):
        with default_dtype(np.float64):
            prop = _line_prop(5)
            layer = GATConv(3, 2, heads=2, rng=np.random.default_rng(3))
            check_gradient(lambda t: layer(t, prop), (5, 3), seed=3, atol=1e-4)

    def test_gcn_respects_isolated_nodes(self):
        # Node 2 isolated: output = normalised self-loop only, finite.
        indptr = np.array([0, 1, 2, 2])
        indices = np.array([1, 0])
        prop = Propagation(indptr, indices, 3)
        layer = GCNConv(2, 2, rng=np.random.default_rng(4))
        out = layer(Tensor(np.ones((3, 2))), prop)
        assert np.all(np.isfinite(out.numpy()))


class TestPropagation:
    def test_edge_matrices_shapes(self):
        prop = _line_prop(4)
        mats = prop.edge_matrices()
        e = prop.indices.size + 4  # + self loops
        assert mats["gather_src"].shape == (e, 4)
        assert mats["scatter_dst"].shape == (4, e)

    def test_edge_matrices_cached(self):
        prop = _line_prop(4)
        assert prop.edge_matrices() is prop.edge_matrices()

    def test_row_t_is_transpose(self):
        prop = _line_prop(4)
        np.testing.assert_allclose(
            prop.row_t.toarray(), prop.row.toarray().T, rtol=1e-6
        )


class TestGNNModels:
    @pytest.mark.parametrize("arch", ["gcn", "sage", "gat"])
    def test_forward_is_log_distribution(self, arch):
        prop = _line_prop(8)
        model = build_model(arch, 4, 3, hidden_channels=8, heads=2, seed=0)
        model.eval()
        with no_grad():
            out = model(Tensor(np.random.default_rng(0).normal(size=(8, 4))), prop)
        probs = np.exp(out.numpy())
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-4)

    def test_unknown_arch_rejected(self):
        with pytest.raises(ValueError):
            build_model("transformer", 4, 3)

    def test_bad_layers_rejected(self):
        with pytest.raises(ValueError):
            GNN("sage", 4, 8, 3, num_layers=0)

    @pytest.mark.parametrize("arch", ["gcn", "sage", "gat"])
    def test_count_parameters_matches_build(self, arch):
        model = build_model(arch, 12, 7, hidden_channels=16, heads=4, seed=0)
        counted = count_parameters(arch, 12, 7, hidden_channels=16, heads=4)
        assert model.num_parameters() == counted

    def test_three_layer_count_matches(self):
        model = build_model("sage", 10, 4, hidden_channels=8, num_layers=3)
        counted = count_parameters("sage", 10, 4, hidden_channels=8, num_layers=3)
        assert model.num_parameters() == counted

    def test_training_reduces_loss(self, small_graph):
        from repro.nn import Adam

        prop = Propagation.from_graph(small_graph)
        model = build_model(
            "sage", small_graph.feature_dim, small_graph.num_classes,
            hidden_channels=16, seed=0,
        )
        opt = Adam(model.parameters(), lr=0.02)
        x = Tensor(small_graph.features)
        first = None
        for _ in range(12):
            model.train()
            opt.zero_grad()
            loss = nll_loss(model(x, prop), small_graph.labels)
            loss.backward()
            opt.step()
            first = first if first is not None else loss.item()
        assert loss.item() < first * 0.7

    def test_state_dict_roundtrip(self):
        model = build_model("gcn", 4, 3, hidden_channels=8, seed=0)
        state = model.state_dict()
        model2 = build_model("gcn", 4, 3, hidden_channels=8, seed=99)
        model2.load_state_dict(state)
        for p1, p2 in zip(model.parameters(), model2.parameters(), strict=True):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_load_state_dict_rejects_mismatch(self):
        model = build_model("gcn", 4, 3, hidden_channels=8)
        other = build_model("gcn", 4, 3, hidden_channels=16)
        with pytest.raises(ValueError):
            model.load_state_dict(other.state_dict())

    def test_train_eval_mode_propagates(self):
        model = build_model("sage", 4, 3)
        model.eval()
        assert all(not m.training for _, m in model.named_modules())
        model.train()
        assert all(m.training for _, m in model.named_modules())
