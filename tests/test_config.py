"""Configuration, template and design-space tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    DesignSpace,
    TaskSpec,
    TrainingConfig,
    default_space,
    get_template,
    reduced_space,
    template_names,
)
from repro.errors import ConfigError


class TestTrainingConfig:
    def test_defaults_valid(self):
        TrainingConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"batch_size": 0},
            {"sampler": "metropolis"},
            {"hop_list": ()},
            {"hop_list": (0, 5)},
            {"bias_rate": 1.5},
            {"batch_order": "zigzag"},
            {"cache_ratio": -0.1},
            {"cache_policy": "arc"},
            {"hidden_channels": 0},
            {"dropout": 1.0},
            {"reorder": "hilbert"},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            TrainingConfig(**kwargs)

    def test_canonical_bias_without_biased_sampler(self):
        cfg = TrainingConfig(sampler="sage", bias_rate=0.5).canonical()
        assert cfg.bias_rate == 0.0

    def test_canonical_biased_with_zero_rate_becomes_sage(self):
        cfg = TrainingConfig(sampler="biased", bias_rate=0.0).canonical()
        assert cfg.sampler == "sage"

    def test_canonical_cache_interactions(self):
        cfg = TrainingConfig(cache_policy="none", cache_ratio=0.3).canonical()
        assert cfg.cache_ratio == 0.0
        cfg = TrainingConfig(cache_policy="lru", cache_ratio=0.0).canonical()
        assert cfg.cache_policy == "none"

    def test_features_align_with_names(self):
        cfg = TrainingConfig()
        assert cfg.as_features().shape == (len(TrainingConfig.feature_names()),)

    def test_describe_mentions_key_knobs(self):
        desc = TrainingConfig(sampler="biased", bias_rate=0.7).describe()
        assert "bias=0.70" in desc and "batch=1024" in desc

    def test_hashable_for_dedup(self):
        a = TrainingConfig()
        b = TrainingConfig()
        assert len({a, b}) == 1


class TestTaskSpec:
    def test_valid(self):
        TaskSpec(dataset="rd2", arch="gat")

    def test_rejects_bad_arch(self):
        with pytest.raises(ConfigError):
            TaskSpec(dataset="rd2", arch="rnn")

    def test_rejects_bad_epochs(self):
        with pytest.raises(ConfigError):
            TaskSpec(dataset="rd2", epochs=0)


class TestTemplates:
    def test_names(self):
        assert set(template_names()) == {
            "pyg",
            "pagraph_full",
            "pagraph_low",
            "2pgraph",
            "saint",
        }

    def test_pyg_has_no_cache(self):
        cfg = get_template("pyg")
        assert cfg.cache_policy == "none" and cfg.cache_ratio == 0.0

    def test_pagraph_static_cache_no_updates(self):
        full = get_template("pagraph_full")
        low = get_template("pagraph_low")
        assert full.cache_policy == low.cache_policy == "static"
        assert full.cache_ratio > low.cache_ratio

    def test_2pgraph_is_biased_and_partition_ordered(self):
        cfg = get_template("2pgraph")
        assert cfg.sampler == "biased"
        assert cfg.bias_rate > 0
        assert cfg.batch_order == "partition"
        assert cfg.cache_policy == "lru"

    def test_override(self):
        cfg = get_template("pyg", batch_size=64)
        assert cfg.batch_size == 64

    def test_unknown_template(self):
        with pytest.raises(ConfigError):
            get_template("dgl")


class TestDesignSpace:
    def test_rejects_unknown_knob(self):
        with pytest.raises(ConfigError):
            DesignSpace({"widgets": (1, 2)})

    def test_rejects_empty_domain(self):
        with pytest.raises(ConfigError):
            DesignSpace({"batch_size": ()})

    def test_enumerate_deduplicates_canonical(self):
        space = DesignSpace(
            {
                "sampler": ("sage", "biased"),
                "bias_rate": (0.0, 0.9),
            }
        )
        # sage+0, sage+0.9->sage+0, biased+0->sage+0, biased+0.9: two unique.
        assert len(space.enumerate()) == 2

    def test_raw_size(self):
        space = DesignSpace({"batch_size": (128, 256), "hidden_channels": (16, 32)})
        assert space.raw_size() == 4

    def test_sample_unique(self):
        rng = np.random.default_rng(0)
        space = default_space()
        sample = space.sample(30, rng=rng)
        assert len(sample) == 30
        assert len(set(sample)) == 30

    def test_sample_small_space_falls_back(self):
        rng = np.random.default_rng(0)
        space = DesignSpace({"batch_size": (128, 256)})
        sample = space.sample(10, rng=rng)
        assert len(sample) == 2

    def test_neighbors_single_knob_difference(self):
        space = DesignSpace(
            {"batch_size": (128, 256, 512), "hidden_channels": (16, 32)}
        )
        base = space.build({"batch_size": 256, "hidden_channels": 16})
        for nbr in space.neighbors(base):
            diffs = sum(
                1
                for field in ("batch_size", "hidden_channels")
                if getattr(nbr, field) != getattr(base, field)
            )
            assert diffs == 1

    def test_reduced_space_is_exhaustible(self):
        candidates = reduced_space().enumerate()
        assert 20 <= len(candidates) <= 100

    def test_default_space_contains_template_like_configs(self):
        space = default_space()
        assert 256 in space.domains["batch_size"]
        assert (10, 5) in space.domains["hop_list"]
