"""CLI tests (parser wiring and the cheap commands)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_navigate_defaults(self):
        args = build_parser().parse_args(["navigate"])
        assert args.dataset == "reddit2"
        assert args.priority == "balance"

    def test_navigate_constraints(self):
        args = build_parser().parse_args(
            ["navigate", "--max-memory-mib", "16", "--min-accuracy", "0.7"]
        )
        assert args.max_memory_mib == 16.0
        assert args.min_accuracy == 0.7

    def test_rejects_unknown_arch(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["navigate", "--arch", "transformer"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("ogbn-arxiv", "ogbn-products", "reddit", "reddit2"):
            assert name in out

    def test_templates_tiny_run(self, capsys, monkeypatch, small_graph):
        # Redirect the dataset loader so the command runs on the test fixture.
        import repro.runtime.backend as backend_mod

        monkeypatch.setattr(
            backend_mod, "load_dataset", lambda name: small_graph
        )
        assert main(["templates", "--dataset", "reddit2", "--epochs", "1"]) == 0
        out = capsys.readouterr().out
        assert "pyg" in out and "2pgraph" in out
