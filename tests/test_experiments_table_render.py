"""Table 1 rendering tests on synthetic blocks (no profiling needed)."""

from __future__ import annotations

from repro.experiments.table1 import Table1Block, Table1Row, render_table1


def _block() -> Table1Block:
    rows = [
        Table1Row("pyg", 0.010, 10e6, 0.90, "base"),
        Table1Row("pagraph_full", 0.005, 15e6, 0.90, "cache"),
        Table1Row("pagraph_low", 0.009, 11e6, 0.90, "small cache"),
        Table1Row("2pgraph", 0.005, 9e6, 0.87, "biased"),
        Table1Row("balance", 0.004, 10e6, 0.91, "bal"),
        Table1Row("ex_tm", 0.003, 7e6, 0.88, "tm"),
        Table1Row("ex_ma", 0.006, 8e6, 0.92, "ma"),
        Table1Row("ex_ta", 0.004, 12e6, 0.91, "ta"),
    ]
    return Table1Block(label="PR + SAGE", dataset="pr", arch="sage", rows=rows)


class TestTable1Rendering:
    def test_contains_paper_annotations(self):
        text = render_table1([_block()])
        # PyG row is the unannotated baseline.
        assert "PyG" in text
        # Speedup annotation relative to PyG (paper style "2.0x").
        assert "(2.0x)" in text
        # Memory delta annotation.
        assert "(+50.0%)" in text

    def test_all_method_labels_present(self):
        text = render_table1([_block()])
        for label in ("Pa-Full", "Pa-Low", "2P", "Bal", "Ex-TM", "Ex-MA", "Ex-TA"):
            assert label in text

    def test_block_accessors(self):
        block = _block()
        assert block.baseline.method == "pyg"
        assert block.row("ex_tm").time_s == 0.003

    def test_missing_method_raises(self):
        import pytest

        with pytest.raises(KeyError):
            _block().row("dgl")
