"""Experiment-harness tests (fast paths: rendering, caching, task registry)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TaskSpec
from repro.experiments import (
    BASELINE_METHODS,
    METHOD_LABELS,
    NAVIGATOR_MODES,
    TABLE1_TASKS,
    TABLE2_DATASETS,
    format_delta_pct,
    format_ratio,
    render_table,
)
from repro.experiments.cache import _recipe_key, profiling_records
from repro.config.space import DesignSpace
from repro.config.settings import TrainingConfig


class TestTables:
    def test_render_alignment(self):
        out = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="t")
        lines = out.splitlines()
        assert lines[0] == "t"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_format_ratio(self):
        assert format_ratio(5.0, 10.0) == "2.0x"
        assert format_ratio(0.0, 10.0) == "n/a"

    def test_format_delta_pct(self):
        assert format_delta_pct(150.0, 100.0) == "+50.0%"
        assert format_delta_pct(70.0, 100.0) == "-30.0%"
        assert format_delta_pct(1.0, 0.0) == "n/a"


class TestTaskRegistry:
    def test_table1_tasks_match_paper(self):
        labels = [label for label, _, _ in TABLE1_TASKS]
        assert labels == ["PR + SAGE", "RD2 + SAGE", "AR + GAT"]

    def test_table2_datasets(self):
        assert set(TABLE2_DATASETS) == {"reddit", "reddit2", "ogbn-products"}

    def test_method_labels_cover_all(self):
        for m in BASELINE_METHODS + NAVIGATOR_MODES:
            assert m in METHOD_LABELS


class TestRecordCache:
    def _space(self) -> DesignSpace:
        return DesignSpace(
            {"batch_size": (32, 64), "hidden_channels": (8,)},
            base=TrainingConfig(hop_list=(3, 2)),
        )

    def test_recipe_key_stable(self):
        task = TaskSpec(dataset="tiny", arch="sage", epochs=1)
        k1 = _recipe_key(task, 4, 0, self._space())
        k2 = _recipe_key(task, 4, 0, self._space())
        assert k1 == k2

    def test_recipe_key_sensitive_to_task(self):
        space = self._space()
        t1 = TaskSpec(dataset="tiny", arch="sage", epochs=1)
        t2 = TaskSpec(dataset="tiny", arch="sage", epochs=2)
        assert _recipe_key(t1, 4, 0, space) != _recipe_key(t2, 4, 0, space)

    def test_memory_cache_hit(self, small_graph):
        task = TaskSpec(dataset="tiny", arch="sage", epochs=1)
        kwargs = dict(
            budget=2,
            seed=1,
            space=self._space(),
            graph=small_graph,
            include_templates=False,
            use_disk=False,
        )
        first = profiling_records(task, **kwargs)
        second = profiling_records(task, **kwargs)
        assert first is second  # memory-cached, not re-profiled

    def test_records_have_targets(self, small_graph):
        task = TaskSpec(dataset="tiny", arch="sage", epochs=1)
        records = profiling_records(
            task,
            budget=2,
            seed=2,
            space=self._space(),
            graph=small_graph,
            include_templates=False,
            use_disk=False,
        )
        for r in records:
            assert r.time_s > 0 and r.memory_bytes > 0
            assert np.isfinite(r.accuracy)
