"""PerfReport / BatchRecord / EpochStats invariants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.memory import MemoryBreakdown
from repro.runtime.report import BatchRecord, EpochStats, PerfReport


def _record(**overrides) -> BatchRecord:
    base = dict(
        num_targets=64,
        num_nodes=500,
        num_edges=3000,
        num_missed=200,
        num_admitted=100,
        num_evicted=50,
        t_sample=1e-3,
        t_transfer=2e-3,
        t_replace=5e-4,
        t_compute=1e-3,
        loss=1.5,
    )
    base.update(overrides)
    return BatchRecord(**base)


class TestBatchRecord:
    def test_hit_rate(self):
        rec = _record(num_nodes=500, num_missed=200)
        assert rec.hit_rate == pytest.approx(0.6)

    def test_hit_rate_empty_batch(self):
        assert _record(num_nodes=0, num_missed=0).hit_rate == 0.0

    def test_time_is_eq4_overlap(self):
        rec = _record(t_sample=1.0, t_transfer=1.0, t_replace=0.1, t_compute=0.5)
        assert rec.time == 2.0
        rec = _record(t_sample=0.1, t_transfer=0.1, t_replace=1.0, t_compute=2.0)
        assert rec.time == 3.0


class TestPerfReport:
    def _report(self) -> PerfReport:
        epochs = [
            EpochStats(
                epoch=i,
                time_s=0.1 * (i + 1),
                t_sample=0.01,
                t_transfer=0.02,
                t_replace=0.0,
                t_compute=0.01,
                mean_batch_nodes=400.0,
                mean_batch_edges=2000.0,
                hit_rate=0.5,
                loss=1.0,
                val_accuracy=0.7,
                num_batches=4,
            )
            for i in range(3)
        ]
        return PerfReport(
            time_s=0.2,
            memory=MemoryBreakdown(model=10.0, cache=20.0, runtime=30.0),
            accuracy=0.75,
            epochs=epochs,
        )

    def test_totals(self):
        rep = self._report()
        assert rep.total_time_s == pytest.approx(0.6)
        assert rep.memory.total == 60.0
        assert rep.mean_hit_rate == pytest.approx(0.5)
        assert rep.mean_batch_nodes == pytest.approx(400.0)

    def test_objective_vector(self):
        vec = self._report().objective_vector()
        np.testing.assert_allclose(vec, [0.2, 60.0, -0.75])

    def test_summary_mentions_metrics(self):
        s = self._report().summary()
        assert "ms/epoch" in s and "MiB" in s and "%" in s

    def test_empty_report_defaults(self):
        rep = PerfReport(
            time_s=0.0,
            memory=MemoryBreakdown(0, 0, 0),
            accuracy=0.0,
        )
        assert rep.mean_hit_rate == 0.0
        assert rep.mean_batch_nodes == 0.0
        assert rep.total_time_s == 0.0
