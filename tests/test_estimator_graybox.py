"""Gray-box estimator tests: batch-size model, end-to-end fit/predict, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TaskSpec, TrainingConfig
from repro.errors import EstimatorError
from repro.estimator import (
    BlackBoxEstimator,
    GrayBoxEstimator,
    analytic_batch_size,
    encode,
    encode_names,
    r2_score,
    validate_leave_one_out,
)
from repro.estimator.batchsize import BlackBoxBatchSizeModel, GrayBoxBatchSizeModel
from repro.graphs.profiling import profile_graph
from repro.hardware import get_platform
from repro.runtime import profile_configs


def _profiling_records(graph, *, n=14, epochs=2, seed=0, arch="sage"):
    """Ground-truth records over a small random config set."""
    rng = np.random.default_rng(seed)
    configs = []
    for _ in range(n):
        configs.append(
            TrainingConfig(
                batch_size=int(rng.choice([32, 64, 128])),
                sampler=str(rng.choice(["sage", "biased", "saint", "fastgcn"])),
                hop_list=tuple(
                    int(k) for k in rng.choice([2, 3, 4], size=2)
                ),
                bias_rate=float(rng.choice([0.0, 0.9])),
                cache_ratio=float(rng.choice([0.0, 0.2, 0.5])),
                cache_policy=str(rng.choice(["none", "static", "lru"])),
                hidden_channels=int(rng.choice([8, 16])),
            ).canonical()
        )
    configs = list(dict.fromkeys(configs))
    task = TaskSpec(dataset="tiny", arch=arch, epochs=epochs)
    return profile_configs(task, configs, graph=graph)


@pytest.fixture(scope="module")
def records(small_graph):
    return _profiling_records(small_graph, n=16)


class TestEncode:
    def test_length_matches_names(self):
        vec = encode(
            TrainingConfig(),
            profile_graph_fixture(),
            get_platform("rtx4090"),
        )
        assert vec.shape == (len(encode_names()),)

    def test_always_finite(self):
        vec = encode(
            TrainingConfig(), profile_graph_fixture(), get_platform("a100")
        )
        assert np.all(np.isfinite(vec))


def profile_graph_fixture():
    from repro.graphs.generators import powerlaw_community_graph

    return profile_graph(
        powerlaw_community_graph(200, num_classes=4, feature_dim=8, seed=3)
    )


class TestBatchSizeModels:
    def test_analytic_monotone_in_batch(self, small_graph):
        profile = profile_graph(small_graph)
        small = analytic_batch_size(TrainingConfig(batch_size=32), profile)
        large = analytic_batch_size(TrainingConfig(batch_size=128), profile)
        assert large > small

    def test_analytic_capped_by_graph(self, small_graph):
        profile = profile_graph(small_graph)
        huge = analytic_batch_size(
            TrainingConfig(batch_size=2048, hop_list=(25, 25)), profile
        )
        assert huge <= small_graph.num_nodes

    def test_graybox_beats_blackbox_out_of_sample(self, small_graph, medium_graph):
        """The Fig. 5 claim: theory-guided prediction generalises better."""
        train = _profiling_records(small_graph, n=16, seed=1)
        test = _profiling_records(medium_graph, n=10, seed=2)
        configs_tr = [r.config for r in train]
        profs_tr = [r.graph_profile for r in train]
        y_tr = np.array([r.mean_batch_nodes for r in train])
        configs_te = [r.config for r in test]
        profs_te = [r.graph_profile for r in test]
        y_te = np.array([r.mean_batch_nodes for r in test])

        gray = GrayBoxBatchSizeModel().fit(configs_tr, profs_tr, y_tr)
        black = BlackBoxBatchSizeModel().fit(configs_tr, profs_tr, y_tr)
        gray_err = np.abs(gray.predict(configs_te, profs_te) - y_te).mean()
        black_err = np.abs(black.predict(configs_te, profs_te) - y_te).mean()
        assert gray_err < black_err

    def test_predict_before_fit(self, small_graph):
        with pytest.raises(EstimatorError):
            GrayBoxBatchSizeModel().predict(
                [TrainingConfig()], [profile_graph(small_graph)]
            )

    def test_fit_rejects_misaligned(self, small_graph):
        with pytest.raises(EstimatorError):
            GrayBoxBatchSizeModel().fit(
                [TrainingConfig()], [profile_graph(small_graph)], np.array([1.0, 2.0])
            )


class TestGrayBoxEstimator:
    def test_fit_predict_shapes(self, records):
        est = GrayBoxEstimator().fit(records)
        preds = est.predict(
            [r.config for r in records], [r.graph_profile for r in records]
        )
        assert len(preds) == len(records)
        for p in preds:
            assert p.time_s > 0 and p.memory_bytes > 0 and 0 <= p.accuracy <= 1

    def test_in_sample_time_correlates(self, records):
        est = GrayBoxEstimator().fit(records)
        preds = est.predict(
            [r.config for r in records], [r.graph_profile for r in records]
        )
        measured = np.array([r.time_s for r in records])
        predicted = np.array([p.time_s for p in preds])
        assert r2_score(measured, predicted) > 0.5

    def test_in_sample_memory_correlates(self, records):
        est = GrayBoxEstimator().fit(records)
        preds = est.predict(
            [r.config for r in records], [r.graph_profile for r in records]
        )
        measured = np.array([r.memory_bytes for r in records])
        predicted = np.array([p.memory_bytes for p in preds])
        assert r2_score(measured, predicted) > 0.5

    def test_needs_enough_records(self, records):
        with pytest.raises(EstimatorError):
            GrayBoxEstimator().fit(records[:3])

    def test_predict_before_fit(self, records):
        est = GrayBoxEstimator()
        with pytest.raises(EstimatorError):
            est.predict([records[0].config], [records[0].graph_profile])

    def test_white_box_only_mode(self, records):
        est = GrayBoxEstimator(use_residuals=False).fit(records)
        preds = est.predict(
            [r.config for r in records], [r.graph_profile for r in records]
        )
        assert all(np.isfinite(p.time_s) for p in preds)

    def test_batch_size_access(self, records):
        est = GrayBoxEstimator().fit(records)
        sizes = est.predict_batch_sizes(
            [r.config for r in records], [r.graph_profile for r in records]
        )
        assert np.all(sizes > 0)


class TestBlackBoxEstimator:
    def test_fit_predict(self, records):
        est = BlackBoxEstimator().fit(records)
        preds = est.predict(
            [r.config for r in records], [r.graph_profile for r in records]
        )
        assert len(preds) == len(records)

    def test_predict_before_fit(self, records):
        with pytest.raises(EstimatorError):
            BlackBoxEstimator().predict(
                [records[0].config], [records[0].graph_profile]
            )


class TestLeaveOneOut:
    def test_protocol_runs(self, small_graph, medium_graph):
        by_dataset = {
            "tiny": _profiling_records(small_graph, n=12, seed=5),
            "medium": _profiling_records(medium_graph, n=12, seed=6),
        }
        results = validate_leave_one_out(by_dataset)
        assert {r.dataset for r in results} == {"tiny", "medium"}
        for r in results:
            assert r.num_train == 12 and r.num_test == 12
            assert r.mse_accuracy >= 0.0

    def test_augmentation_never_held_out(self, small_graph, medium_graph):
        by_dataset = {
            "tiny": _profiling_records(small_graph, n=10, seed=7),
            "medium": _profiling_records(medium_graph, n=10, seed=8),
            "aug0": _profiling_records(small_graph, n=10, seed=9),
        }
        results = validate_leave_one_out(by_dataset)
        assert {r.dataset for r in results} == {"tiny", "medium"}
        assert all(r.num_train == 20 for r in results)

    def test_needs_two_datasets(self, small_graph):
        with pytest.raises(EstimatorError):
            validate_leave_one_out({"tiny": _profiling_records(small_graph, n=10)})
