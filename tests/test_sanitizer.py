"""Runtime lockdep (repro.analysis.sanitizer) and its cross-validation
against the static LOCK002 graph (repro.analysis.dynamic).

Every sanitizer test builds its own :class:`LockSanitizer` with the tests
directory as an extra tracking root and tears it down in ``finally`` —
instances nest, so these pass unchanged under a session-wide sanitizer
(``pytest --sanitize-locks``)."""

from __future__ import annotations

import json
import textwrap
import threading
import time
from pathlib import Path

import pytest

from repro.analysis import run_analysis
from repro.analysis.cli import main as lint_main
from repro.analysis.dynamic import (
    ObservedGraph,
    find_label_cycles,
    render_dot,
    verify_dynamic,
)
from repro.analysis.sanitizer import (
    REPORT_VERSION,
    LockSanitizer,
    _TrackedLock,
)

_TESTS_DIR = str(Path(__file__).resolve().parent)


@pytest.fixture()
def san():
    sanitizer = LockSanitizer(hold_budget=30.0, include=[_TESTS_DIR])
    sanitizer.enable()
    try:
        yield sanitizer
    finally:
        sanitizer.disable()


class _Pair:
    """Two named locks; the sanitizer labels them ``_Pair.a`` / ``_Pair.b``."""

    def __init__(self):
        self.a = threading.Lock()
        self.b = threading.Lock()


# -------------------------------------------------------------- observation
class TestObservation:
    def test_nested_acquire_records_edge(self, san):
        pair = _Pair()
        with pair.a:
            with pair.b:
                pass
        report = san.report()
        assert report["version"] == REPORT_VERSION
        labels = {lock["label"] for lock in report["locks"]}
        assert {"_Pair.a", "_Pair.b"} <= labels
        edges = {(e["src"], e["dst"]) for e in report["edges"]}
        assert ("_Pair.a", "_Pair.b") in edges
        assert report["findings"] == []

    def test_consistent_order_is_clean(self, san):
        pair = _Pair()
        for _ in range(3):
            with pair.a:
                with pair.b:
                    pass
        assert san.findings == []
        [edge] = san.report()["edges"]
        assert edge["count"] == 3

    def test_creation_site_and_acquire_stats(self, san):
        pair = _Pair()
        with pair.a:
            pass
        lock_a = next(
            lock for lock in san.report()["locks"]
            if lock["label"] == "_Pair.a"
        )
        assert lock_a["kind"] == "lock"
        assert lock_a["acquisitions"] == 1
        assert "test_sanitizer.py" in lock_a["site"]

    def test_locks_outside_roots_stay_raw(self):
        sanitizer = LockSanitizer()  # repro package only — not tests/
        sanitizer.enable()
        try:
            lock = threading.Lock()
        finally:
            sanitizer.disable()
        assert not isinstance(lock, _TrackedLock)

    def test_stdlib_composites_stay_raw(self, san):
        # threading.Event() builds its Condition/Lock inside threading.py;
        # the sanitizer must not track (or mislabel) those internals.
        event = threading.Event()
        event.set()
        assert event.is_set()
        assert san.report()["locks"] == []


# ----------------------------------------------------------------- findings
class TestFindings:
    def test_inverted_order_in_fixture_thread_reported(self, san):
        pair = _Pair()
        with pair.a:
            with pair.b:
                pass

        def invert():
            with pair.b:
                with pair.a:
                    pass

        thread = threading.Thread(target=invert, name="inverter")
        thread.start()
        thread.join()
        kinds = [f.kind for f in san.findings]
        assert kinds == ["order-inversion"]
        finding = san.findings[0]
        assert "_Pair.a" in finding.message
        assert "_Pair.b" in finding.message
        assert finding.thread == "inverter"

    def test_reacquire_nonreentrant_reported(self, san):
        pair = _Pair()
        assert pair.a.acquire()
        try:
            # A timeout keeps the guaranteed self-deadlock bounded; the
            # sanitizer reports before delegating to the real lock.
            assert pair.a.acquire(timeout=0.05) is False
        finally:
            pair.a.release()
        kinds = [f.kind for f in san.findings]
        assert kinds == ["re-acquire"]

    def test_rlock_reentry_is_clean(self, san):
        class _Nest:
            def __init__(self):
                self.lock = threading.RLock()

        nest = _Nest()
        with nest.lock:
            with nest.lock:
                pass
        assert san.findings == []
        lock = next(
            entry for entry in san.report()["locks"]
            if entry["label"] == "_Nest.lock"
        )
        assert lock["kind"] == "rlock"

    def test_sleep_under_lock_reported(self, san):
        pair = _Pair()
        with pair.a:
            time.sleep(0.001)
        kinds = [f.kind for f in san.findings]
        assert kinds == ["blocking-sleep"]
        assert "_Pair.a" in san.findings[0].message

    def test_sleep_outside_lock_is_clean(self, san):
        time.sleep(0.001)
        assert san.findings == []

    def test_hold_budget_violation_reported(self):
        sanitizer = LockSanitizer(hold_budget=0.0, include=[_TESTS_DIR])
        sanitizer.enable()
        try:
            pair = _Pair()
            with pair.a:
                deadline = time.monotonic() + 0.005
                while time.monotonic() < deadline:  # busy: sleep is a finding
                    pass
        finally:
            sanitizer.disable()
        kinds = [f.kind for f in sanitizer.findings]
        assert kinds == ["hold-budget"]

    def test_findings_deduplicate(self, san):
        pair = _Pair()
        for _ in range(5):
            with pair.a:
                time.sleep(0.0)
        assert len(san.findings) == 1


# ---------------------------------------------------------------- condition
class TestCondition:
    def test_condition_wait_roundtrip(self, san):
        class _Box:
            def __init__(self):
                self.cond = threading.Condition()

        box = _Box()
        with box.cond:
            box.cond.wait(0.01)
            box.cond.notify_all()
        assert san.findings == []
        lock = next(
            entry for entry in san.report()["locks"]
            if entry["label"] == "_Box.cond"
        )
        assert lock["kind"] == "condition"
        assert lock["acquisitions"] >= 2  # entry + wait re-acquire

    def test_condition_over_tracked_lock(self, san):
        class _Guard:
            def __init__(self):
                self.lock = threading.Lock()
                self.cond = threading.Condition(self.lock)

        guard = _Guard()
        with guard.cond:
            guard.cond.wait(0.01)
        with guard.lock:
            pass
        assert san.findings == []


# ---------------------------------------------------------------- lifecycle
class TestLifecycle:
    def test_enable_disable_restores_factories(self):
        before = (threading.Lock, threading.RLock, threading.Condition,
                  time.sleep)
        sanitizer = LockSanitizer(include=[_TESTS_DIR])
        sanitizer.enable()
        assert threading.Lock is not before[0]
        sanitizer.disable()
        after = (threading.Lock, threading.RLock, threading.Condition,
                 time.sleep)
        assert after == before

    def test_nested_sanitizers_restore_in_order(self):
        before = threading.Lock
        outer = LockSanitizer(include=[_TESTS_DIR])
        inner = LockSanitizer(include=[_TESTS_DIR])
        outer.enable()
        outer_factory = threading.Lock
        inner.enable()
        inner.disable()
        assert threading.Lock is outer_factory  # outer still in force
        outer.disable()
        assert threading.Lock is before

    def test_tracked_locks_survive_disable(self, san):
        pair = _Pair()
        san.disable()
        with pair.a:  # wrapper outlives the patch window; must still work
            pass
        san.enable()
        assert any(
            lock["label"] == "_Pair.a" for lock in san.report()["locks"]
        )


# ------------------------------------------------------------ report I/O
class TestReportRoundtrip:
    def test_write_report_loads_as_observed_graph(self, san, tmp_path):
        pair = _Pair()
        with pair.a:
            with pair.b:
                pass
        path = san.write_report(tmp_path / "observed.json")
        observed = ObservedGraph.load(path)
        assert [e.pair for e in observed.edges] == [("_Pair.a", "_Pair.b")]
        assert observed.source.endswith("observed.json")

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99}), encoding="utf-8")
        with pytest.raises(ValueError, match="version"):
            ObservedGraph.load(path)


# ------------------------------------------------------------ verify-dynamic
_STATIC_FIXTURE = """
    import threading

    class Svc:
        def __init__(self):
            self.a = threading.Lock()
            self.b = threading.Lock()

        def go(self):
            with self.a:
                with self.b:
                    pass
"""


def _static_graph(tmp_path: Path):
    mod = tmp_path / "svc.py"
    mod.write_text(textwrap.dedent(_STATIC_FIXTURE), encoding="utf-8")
    return mod, run_analysis([mod], tmp_path).graph


def _observed(edges, findings=()):
    return ObservedGraph.from_dict(
        {
            "version": REPORT_VERSION,
            "hold_budget_s": 1.0,
            "locks": [],
            "edges": [
                {"src": src, "dst": dst, "count": 1, "site": "svc.py:1"}
                for src, dst in edges
            ],
            "findings": list(findings),
        },
        source="observed.json",
    )


class TestVerifyDynamic:
    def test_matched_edges_are_ok(self, tmp_path):
        _, graph = _static_graph(tmp_path)
        diff, findings = verify_dynamic(
            graph, _observed([("Svc.a", "Svc.b")])
        )
        assert diff.ok
        assert findings == []
        assert [e.pair for e in diff.matched] == [("Svc.a", "Svc.b")]
        assert diff.unexercised == []

    def test_observed_edge_missing_from_static_fires_dyn001(self, tmp_path):
        _, graph = _static_graph(tmp_path)
        diff, findings = verify_dynamic(
            graph, _observed([("Svc.a", "Svc.b"), ("Svc.b", "Svc.c")])
        )
        assert not diff.ok
        assert [f.rule for f in findings] == ["DYN001"]
        assert "Svc.b -> Svc.c" in findings[0].message

    def test_merged_cycle_fires_dyn002(self, tmp_path):
        _, graph = _static_graph(tmp_path)
        diff, findings = verify_dynamic(
            graph, _observed([("Svc.b", "Svc.a")])
        )
        assert diff.merged_cycles == [["Svc.a", "Svc.b"]]
        assert {f.rule for f in findings} == {"DYN001", "DYN002"}

    def test_unexercised_static_edges_reported_not_findings(self, tmp_path):
        _, graph = _static_graph(tmp_path)
        diff, findings = verify_dynamic(graph, _observed([]))
        assert diff.ok  # coverage gap, not an error
        assert findings == []
        assert [
            (e.src.label, e.dst.label) for e in diff.unexercised
        ] == [("Svc.a", "Svc.b")]

    def test_runtime_violations_resurface_as_dyn003(self, tmp_path):
        _, graph = _static_graph(tmp_path)
        _, findings = verify_dynamic(
            graph,
            _observed(
                [],
                findings=[
                    {"kind": "order-inversion", "message": "inverted",
                     "site": "svc.py:9", "thread": "t"},
                    {"kind": "blocking-sleep", "message": "slept",
                     "site": "svc.py:9", "thread": "t"},
                ],
            ),
        )
        # blocking-sleep is load-dependent: summarized, never an error.
        assert [f.rule for f in findings] == ["DYN003"]
        assert "order-inversion" in findings[0].message

    def test_find_label_cycles(self):
        assert find_label_cycles({("a", "b"), ("b", "a")}) == [["a", "b"]]
        assert find_label_cycles({("a", "b"), ("b", "c")}) == []


# ------------------------------------------------------------------ CLI+dot
class TestVerifyDynamicCli:
    def test_clean_verify_exits_zero(self, tmp_path, capsys):
        mod, _ = _static_graph(tmp_path)
        observed = tmp_path / "observed.json"
        observed.write_text(
            json.dumps(
                {
                    "version": REPORT_VERSION,
                    "edges": [
                        {"src": "Svc.a", "dst": "Svc.b", "count": 2,
                         "site": "svc.py:10"}
                    ],
                    "locks": [],
                    "findings": [],
                    "hold_budget_s": 1.0,
                }
            ),
            encoding="utf-8",
        )
        code = lint_main(
            [str(mod), "--root", str(tmp_path), "--no-baseline",
             "--verify-dynamic", str(observed)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "dynamic verify" in out
        assert "0 missing from static" in out

    def test_missing_edge_fails_run(self, tmp_path, capsys):
        mod, _ = _static_graph(tmp_path)
        observed = tmp_path / "observed.json"
        observed.write_text(
            json.dumps(
                {
                    "version": REPORT_VERSION,
                    "edges": [
                        {"src": "Svc.b", "dst": "Svc.z", "count": 1,
                         "site": "svc.py:12"}
                    ],
                    "locks": [],
                    "findings": [],
                    "hold_budget_s": 1.0,
                }
            ),
            encoding="utf-8",
        )
        code = lint_main(
            [str(mod), "--root", str(tmp_path), "--no-baseline",
             "--verify-dynamic", str(observed)]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "DYN001" in out

    def test_dot_format_renders_merged_graph(self, tmp_path, capsys):
        mod, _ = _static_graph(tmp_path)
        observed = tmp_path / "observed.json"
        observed.write_text(
            json.dumps(
                {
                    "version": REPORT_VERSION,
                    "edges": [
                        {"src": "Svc.a", "dst": "Svc.b", "count": 4,
                         "site": "svc.py:10"}
                    ],
                    "locks": [],
                    "findings": [],
                    "hold_budget_s": 1.0,
                }
            ),
            encoding="utf-8",
        )
        dot_file = tmp_path / "out" / "graph.dot"
        code = lint_main(
            [str(mod), "--root", str(tmp_path), "--no-baseline",
             "--verify-dynamic", str(observed),
             "--format", "dot", "--graph", str(dot_file)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("digraph lock_order {")
        assert '"Svc.a" -> "Svc.b"' in out
        assert 'label="4x"' in out
        assert dot_file.read_text(encoding="utf-8") == out

    def test_dot_without_observed_marks_nothing_unexercised(
        self, tmp_path, capsys
    ):
        mod, _ = _static_graph(tmp_path)
        code = lint_main(
            [str(mod), "--root", str(tmp_path), "--no-baseline",
             "--format", "dot"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "unexercised" not in out
        assert "color=gray50" in out


class TestRenderDot:
    def test_observed_only_edge_is_red(self, tmp_path):
        _, graph = _static_graph(tmp_path)
        dot = render_dot(graph, _observed([("Svc.x", "Svc.y")]))
        assert '"Svc.x" -> "Svc.y" [color=red' in dot
        assert 'style=dashed, label="unexercised"' in dot  # static, unseen


# ------------------------------------------------------------- end to end
class TestEndToEnd:
    def test_sanitized_run_verifies_against_static_fixture(self, tmp_path):
        """The full loop: run real (test-local) lock traffic under the
        sanitizer, write the report, and verify it against a static model
        of the same discipline — zero missing edges, merged acyclic."""
        sanitizer = LockSanitizer(hold_budget=30.0, include=[_TESTS_DIR])
        sanitizer.enable()
        try:

            class Svc:  # mirrors _STATIC_FIXTURE's lock discipline
                def __init__(self):
                    self.a = threading.Lock()
                    self.b = threading.Lock()

                def go(self):
                    with self.a:
                        with self.b:
                            pass

            Svc().go()
        finally:
            sanitizer.disable()
        report_path = sanitizer.write_report(tmp_path / "observed.json")
        mod, graph = _static_graph(tmp_path)
        diff, findings = verify_dynamic(
            graph, ObservedGraph.load(report_path)
        )
        assert findings == []
        assert diff.ok
        assert [e.pair for e in diff.matched] == [("Svc.a", "Svc.b")]
