"""Profiling service tests: parallel fan-out, dedup, persistent cache."""

from __future__ import annotations

import json
import os

import pytest

from repro.config import TaskSpec, TrainingConfig
from repro.runtime import ProfilingService, profile_configs
from repro.runtime.parallel import (
    ResultStore,
    candidate_key,
    graph_fingerprint,
    predicted_cost,
    record_from_dict,
    record_to_dict,
)


@pytest.fixture()
def configs() -> list[TrainingConfig]:
    return [
        TrainingConfig(batch_size=64, sampler="sage", hop_list=(3, 2)),
        TrainingConfig(batch_size=32, sampler="fastgcn", hop_list=(4,)),
        TrainingConfig(batch_size=64, sampler="sage", hop_list=(3, 2)),  # dup
    ]


class TestKeys:
    def test_fingerprint_distinguishes_graphs(self, small_graph, medium_graph):
        assert graph_fingerprint(small_graph) != graph_fingerprint(medium_graph)

    def test_fingerprint_deterministic(self, small_graph):
        assert graph_fingerprint(small_graph) == graph_fingerprint(small_graph)

    def test_key_uses_canonical_config(self, small_graph, tiny_task):
        fp = graph_fingerprint(small_graph)
        # bias_rate is meaningless for the sage sampler: canonicalisation
        # zeroes it, so both candidates share one measurement.
        a = TrainingConfig(sampler="sage", bias_rate=0.0)
        b = TrainingConfig(sampler="sage", bias_rate=0.7)
        assert candidate_key(tiny_task, a, fp) == candidate_key(tiny_task, b, fp)

    def test_key_separates_tasks(self, small_graph, tiny_task):
        fp = graph_fingerprint(small_graph)
        cfg = TrainingConfig()
        other = TaskSpec(dataset=tiny_task.dataset, arch="gcn", epochs=2)
        assert candidate_key(tiny_task, cfg, fp) != candidate_key(other, cfg, fp)


class TestSerialization:
    def test_record_round_trip(self, small_graph, tiny_task, configs):
        record = profile_configs(tiny_task, configs[:1], graph=small_graph)[0]
        clone = record_from_dict(json.loads(json.dumps(record_to_dict(record))))
        assert clone == record
        assert (clone.features() == record.features()).all()


class TestProfilingService:
    def test_parallel_identical_to_serial(self, small_graph, tiny_task, configs):
        serial = profile_configs(tiny_task, configs, graph=small_graph)
        service = ProfilingService(max_workers=2)
        parallel = service.profile(tiny_task, configs, graph=small_graph)
        assert parallel == serial

    def test_deduplicates_repeated_candidates(self, small_graph, tiny_task, configs):
        service = ProfilingService()
        records = service.profile(tiny_task, configs, graph=small_graph)
        assert len(records) == len(configs)
        assert service.stats.executed == 2
        assert service.stats.deduplicated == 1
        assert records[0] == records[2]

    def test_cache_hit_skips_training(self, small_graph, tiny_task, configs, tmp_path):
        cold = ProfilingService(cache_dir=tmp_path)
        first = cold.profile(tiny_task, configs, graph=small_graph)
        assert cold.stats.executed == 2
        assert len(cold.store) == 2

        warm = ProfilingService(cache_dir=tmp_path)
        second = warm.profile(tiny_task, configs, graph=small_graph)
        assert warm.stats.executed == 0
        assert warm.stats.cache_hits == 2
        assert second == first

    def test_in_memory_reuse_without_cache_dir(self, small_graph, tiny_task, configs):
        service = ProfilingService()
        first = service.profile(tiny_task, configs, graph=small_graph)
        second = service.profile(tiny_task, configs, graph=small_graph)
        assert service.stats.executed == 2  # nothing re-ran on the second call
        assert second == first

    def test_corrupt_cache_entry_discarded(
        self, small_graph, tiny_task, configs, tmp_path
    ):
        ProfilingService(cache_dir=tmp_path).profile(
            tiny_task, configs, graph=small_graph
        )
        victim = sorted(tmp_path.glob("gt_*.json"))[0]
        victim.write_text("{this is not json")

        service = ProfilingService(cache_dir=tmp_path)
        records = service.profile(tiny_task, configs, graph=small_graph)
        assert len(records) == len(configs)
        assert service.stats.executed == 1  # only the corrupt entry re-ran
        assert service.stats.cache_hits == 1
        assert not victim.exists() or json.loads(victim.read_text())

    def test_version_skew_discarded(self, small_graph, tiny_task, configs, tmp_path):
        service = ProfilingService(cache_dir=tmp_path)
        service.profile(tiny_task, configs[:1], graph=small_graph)
        victim = next(tmp_path.glob("gt_*.json"))
        envelope = json.loads(victim.read_text())
        envelope["version"] = 999
        victim.write_text(json.dumps(envelope))

        fresh = ProfilingService(cache_dir=tmp_path)
        fresh.profile(tiny_task, configs[:1], graph=small_graph)
        assert fresh.stats.executed == 1

    def test_store_load_missing_key(self, tmp_path):
        assert ResultStore(tmp_path).load("deadbeef") is None

    def test_rejects_negative_workers(self):
        with pytest.raises(ValueError):
            ProfilingService(max_workers=-1)

    def test_cost_ordering_is_monotone(self, small_graph, tiny_task):
        cheap = TrainingConfig(
            batch_size=256, hop_list=(2,), hidden_channels=8, num_layers=1
        )
        heavy = TrainingConfig(
            batch_size=32, hop_list=(10, 10), hidden_channels=128, num_layers=3
        )
        assert predicted_cost(tiny_task, heavy, small_graph) > predicted_cost(
            tiny_task, cheap, small_graph
        )
        # more epochs, same knobs -> strictly costlier
        longer = TaskSpec(dataset=tiny_task.dataset, epochs=8)
        assert predicted_cost(longer, cheap, small_graph) > predicted_cost(
            tiny_task, cheap, small_graph
        )


class TestStoreManagement:
    def _populate(self, store: ResultStore, record, n: int) -> list[str]:
        keys = [f"{i:032x}" for i in range(n)]
        for key in keys:
            store.save(key, record)
        return keys

    @pytest.fixture()
    def record(self, small_graph, tiny_task, configs):
        return profile_configs(tiny_task, configs[:1], graph=small_graph)[0]

    def test_keys_lists_entries(self, tmp_path, record):
        store = ResultStore(tmp_path)
        keys = self._populate(store, record, 3)
        assert store.keys() == sorted(keys)

    def test_len_is_cached_and_tracks_saves(self, tmp_path, record):
        store = ResultStore(tmp_path)
        self._populate(store, record, 3)
        assert len(store) == 3
        store.save("0" * 32, record)  # overwrite: count unchanged
        assert len(store) == 3
        # a second instance on the same dir counts what is on disk
        assert len(ResultStore(tmp_path)) == 3

    def test_len_tracks_corrupt_discard(self, tmp_path, record):
        store = ResultStore(tmp_path)
        self._populate(store, record, 2)
        victim = sorted(tmp_path.glob("gt_*.json"))[0]
        victim.write_text("{broken")
        assert store.load(victim.stem[len("gt_") :]) is None
        assert len(store) == 1

    def test_prune_evicts_oldest(self, tmp_path, record):
        store = ResultStore(tmp_path)
        keys = self._populate(store, record, 5)
        paths = [tmp_path / f"gt_{k}.json" for k in keys]
        now = paths[-1].stat().st_mtime
        for age, path in enumerate(reversed(paths)):
            os.utime(path, (now - age, now - age))  # paths[0] oldest
        assert store.prune(max_entries=2) == 3
        assert len(store) == 2
        assert store.keys() == sorted(keys[-2:])
        assert store.prune(max_entries=2) == 0  # already within budget

    def test_prune_rejects_negative(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path).prune(-1)

    def test_refresh_counts_foreign_writes(self, tmp_path, record):
        store = ResultStore(tmp_path)
        other = ResultStore(tmp_path)  # simulates another process
        other.save("f" * 32, record)
        assert len(store) == 0  # instance view is stale by design
        assert store.refresh() == 1
        assert len(store) == 1

    def test_nbytes_tracks_saves_overwrites_discards(self, tmp_path, record):
        store = ResultStore(tmp_path)
        keys = self._populate(store, record, 3)
        on_disk = sum(p.stat().st_size for p in tmp_path.glob("gt_*.json"))
        assert store.nbytes == on_disk
        store.save(keys[0], record)  # overwrite: byte total stays in sync
        assert store.nbytes == sum(
            p.stat().st_size for p in tmp_path.glob("gt_*.json")
        )
        store.prune(max_entries=1)
        assert len(store) == 1
        assert store.nbytes == sum(
            p.stat().st_size for p in tmp_path.glob("gt_*.json")
        )
        # a fresh instance and refresh() both agree with the disk
        assert ResultStore(tmp_path).nbytes == store.nbytes
        store.refresh()
        assert store.nbytes == sum(
            p.stat().st_size for p in tmp_path.glob("gt_*.json")
        )

    def test_prune_bytes_evicts_oldest_to_budget(self, tmp_path, record):
        store = ResultStore(tmp_path)
        keys = self._populate(store, record, 4)
        paths = [tmp_path / f"gt_{k}.json" for k in keys]
        now = paths[-1].stat().st_mtime
        for age, path in enumerate(reversed(paths)):
            os.utime(path, (now - age, now - age))  # paths[0] oldest
        entry = paths[0].stat().st_size
        removed = store.prune_bytes(2 * entry)
        assert removed == 2
        assert store.nbytes <= 2 * entry
        assert store.keys() == sorted(keys[-2:])  # oldest went first
        assert store.prune_bytes(2 * entry) == 0  # already within budget
        with pytest.raises(ValueError):
            store.prune_bytes(-1)

    def test_pinned_entries_survive_eviction(self, tmp_path, record):
        store = ResultStore(tmp_path)
        keys = self._populate(store, record, 4)
        paths = [tmp_path / f"gt_{k}.json" for k in keys]
        now = paths[-1].stat().st_mtime
        for age, path in enumerate(reversed(paths)):
            os.utime(path, (now - age, now - age))  # keys[0] oldest
        store.pin(keys[0])  # the oldest — first in line for eviction
        assert store.prune(max_entries=2) == 2
        kept = store.keys()
        assert keys[0] in kept  # pinned: survived although oldest
        assert kept == sorted([keys[0], keys[3]])
        # byte budget respects pins the same way
        store.pin(keys[3])
        assert store.prune_bytes(0) == 0  # everything left is pinned
        assert len(store) == 2
        store.unpin(keys[0])
        assert store.prune_bytes(0) == 1  # unpinned entry now evictable
        assert store.keys() == [keys[3]]
        assert store.pinned == {keys[3]}

    def test_service_byte_budget_bounds_store(
        self, small_graph, tiny_task, configs, tmp_path
    ):
        probe = ProfilingService(cache_dir=tmp_path / "probe")
        probe.profile(tiny_task, configs[:1], graph=small_graph)
        entry = probe.store.nbytes  # bytes of one record on this platform

        # room for one record but not two: the second commit must evict
        budget = entry + entry // 2
        service = ProfilingService(
            cache_dir=tmp_path / "store", store_budget_bytes=budget
        )
        service.profile(tiny_task, configs, graph=small_graph)
        assert service.store.nbytes <= budget
        assert service.stats.evictions > 0
        with pytest.raises(ValueError):
            ProfilingService(store_budget_bytes=0)


class TestIntegration:
    def test_profile_configs_wrapper_with_cache(
        self, small_graph, tiny_task, configs, tmp_path
    ):
        first = profile_configs(
            tiny_task, configs, graph=small_graph, cache_dir=str(tmp_path)
        )
        second = profile_configs(
            tiny_task, configs, graph=small_graph, cache_dir=str(tmp_path)
        )
        assert second == first
        assert len(list(tmp_path.glob("gt_*.json"))) == 2

    def test_cli_exposes_service_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["navigate", "--workers", "3", "--profile-cache", "/tmp/pc"]
        )
        assert args.workers == 3
        assert args.profile_cache == "/tmp/pc"
