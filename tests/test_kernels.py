"""Kernel parity suite (``docs/kernels.md`` contract).

``reference`` must be byte-identical to the pre-refactor spmm path —
forward *and* backward — on every conv type; optimized kernels must match
within float32 tolerance on random CSR graphs including empty-row and
single-node edge cases; and a real training run's loss trajectory must obey
the same split (bit-exact for ``reference``, tolerance-bounded otherwise).
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd.functional import nll_loss, relu
from repro.autograd.sparse import normalized_adjacency, spmm
from repro.autograd.tensor import Tensor
from repro.config.settings import KERNEL_NAMES, TaskSpec, TrainingConfig
from repro.errors import ConfigError
from repro.graphs.csr import CSRGraph
from repro.nn.graphconv import Propagation
from repro.nn.models import build_model
from repro.runtime.backend import RuntimeBackend
from repro.runtime.kernels import (
    ParallelKernel,
    ReorderKernel,
    SpmmKernel,
    get_kernel,
    kernel_counters,
    kernel_names,
    register_kernel,
    reset_kernel_counters,
)

OPTIMIZED = tuple(name for name in KERNEL_NAMES if name != "reference")

#: float32 tolerance for kernels that reassociate sums (docs/kernels.md)
TOL = dict(rtol=1e-4, atol=1e-5)


def _random_csr(
    n_rows: int, n_cols: int, density: float, seed: int, *, empty_rows: int = 0
) -> sp.csr_matrix:
    rng = np.random.default_rng(seed)
    matrix = sp.random(
        n_rows, n_cols, density=density, format="csr",
        dtype=np.float32, random_state=np.random.RandomState(seed),
    )
    if empty_rows:
        rows = rng.choice(n_rows, size=empty_rows, replace=False)
        mask = np.ones(n_rows, dtype=np.float32)
        mask[rows] = 0.0
        matrix = sp.diags(mask).astype(np.float32) @ matrix
        matrix.eliminate_zeros()
        matrix = matrix.tocsr()
    return matrix


# ---------------------------------------------------------------- registry
class TestRegistry:
    def test_registry_matches_config_names(self):
        assert set(kernel_names()) == set(KERNEL_NAMES)

    def test_get_kernel_returns_singleton(self):
        assert get_kernel("reference") is get_kernel("reference")

    def test_unknown_kernel_raises(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            get_kernel("cusparse")

    def test_reregistering_name_raises(self):
        class Impostor(SpmmKernel):
            name = "reference"

        with pytest.raises(ValueError, match="already registered"):
            register_kernel(Impostor)

    def test_abstract_name_rejected(self):
        class Nameless(SpmmKernel):
            pass

        with pytest.raises(ValueError, match="concrete"):
            register_kernel(Nameless)


# ------------------------------------------------------------------ config
class TestConfigKernelField:
    def test_default_is_reference(self):
        assert TrainingConfig().kernel == "reference"

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "parallel")
        assert TrainingConfig().kernel == "parallel"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigError, match="unknown kernel"):
            TrainingConfig(kernel="cusparse")

    def test_roundtrips_through_dict(self):
        cfg = TrainingConfig(kernel="fused")
        assert cfg.to_dict()["kernel"] == "fused"
        assert TrainingConfig.from_dict(cfg.to_dict()) == cfg

    def test_describe_mentions_non_default_kernel(self):
        assert "kernel=reorder" in TrainingConfig(kernel="reorder").describe()
        assert "kernel=" not in TrainingConfig().describe()

    def test_feature_vector_excludes_kernel(self):
        # Estimator feature stability: the analytic cost model is
        # kernel-independent, so the encoding must not fork on it.
        names = TrainingConfig.feature_names()
        assert not any("kernel" in name for name in names)
        assert TrainingConfig(kernel="parallel").as_features().shape == (
            len(names),
        )
        np.testing.assert_array_equal(
            TrainingConfig(kernel="parallel").as_features(),
            TrainingConfig().as_features(),
        )


# ------------------------------------------------------------- raw parity
class TestRawSpmmParity:
    @pytest.mark.parametrize("kernel_name", KERNEL_NAMES)
    @pytest.mark.parametrize(
        "shape,density,empty_rows",
        [((80, 80), 0.1, 0), ((120, 120), 0.05, 17), ((1, 1), 1.0, 0)],
        ids=["dense-ish", "empty-rows", "single-node"],
    )
    def test_matches_scipy_product(self, kernel_name, shape, density, empty_rows):
        matrix = _random_csr(*shape, density, seed=3, empty_rows=empty_rows)
        x = Tensor(
            np.random.default_rng(4).standard_normal((shape[1], 8)),
            requires_grad=True,
        )
        kernel = get_kernel(kernel_name)

        out = kernel.spmm(matrix, x)
        expected = spmm(matrix, x)
        out.sum().backward()
        grad = x.grad.copy()
        x.zero_grad()
        expected.sum().backward()

        if kernel.bit_exact:
            np.testing.assert_array_equal(out.data, expected.data)
            np.testing.assert_array_equal(grad, x.grad)
        else:
            np.testing.assert_allclose(out.data, expected.data, **TOL)
            np.testing.assert_allclose(grad, x.grad, **TOL)

    @pytest.mark.parametrize("kernel_name", KERNEL_NAMES)
    def test_symmetric_and_transposed_backward(self, kernel_name):
        n = 60
        g = CSRGraph.from_edges(
            n,
            np.random.default_rng(5).integers(0, n, 400),
            np.random.default_rng(6).integers(0, n, 400),
        )
        sym = normalized_adjacency(g.indptr, g.indices, n, mode="sym")
        row = normalized_adjacency(g.indptr, g.indices, n, mode="row")
        row_t = row.T.tocsr()
        kernel = get_kernel(kernel_name)
        for kwargs, matrix in (
            ({"symmetric": True}, sym),
            ({"transposed": row_t}, row),
            ({}, row),
        ):
            x = Tensor(
                np.random.default_rng(7).standard_normal((n, 6)),
                requires_grad=True,
            )
            kernel.spmm(matrix, x, **kwargs).sum().backward()
            got = x.grad.copy()
            x.zero_grad()
            spmm(matrix, x, **kwargs).sum().backward()
            np.testing.assert_allclose(got, x.grad, **TOL)


# ---------------------------------------------------------- fused epilogue
class TestFusedEpilogue:
    @pytest.mark.parametrize("with_add", [False, True])
    @pytest.mark.parametrize("with_bias", [False, True])
    @pytest.mark.parametrize("activation", [None, "relu"])
    def test_matches_composed_ops(self, with_add, with_bias, activation):
        n, d = 90, 12
        matrix = _random_csr(n, n, 0.08, seed=9)
        rng = np.random.default_rng(10)
        x = Tensor(rng.standard_normal((n, d)), requires_grad=True)
        add = Tensor(rng.standard_normal((n, d)), requires_grad=True) if with_add else None
        bias = Tensor(rng.standard_normal(d), requires_grad=True) if with_bias else None

        fused = get_kernel("fused").spmm_epilogue(
            matrix, x, add=add, bias=bias, activation=activation
        )
        composed = spmm(matrix, x)
        if add is not None:
            composed = composed + add
        if bias is not None:
            composed = composed + bias
        if activation == "relu":
            composed = relu(composed)
        np.testing.assert_array_equal(fused.data, composed.data)

        fused.sum().backward()
        grads = [
            t.grad.copy() for t in (x, add, bias) if t is not None
        ]
        for t in (x, add, bias):
            if t is not None:
                t.zero_grad()
        composed.sum().backward()
        for got, t in zip(grads, [t for t in (x, add, bias) if t is not None]):
            np.testing.assert_allclose(got, t.grad, **TOL)

    def test_elu_falls_back_to_composed_path(self):
        # The fused kernel declines to fuse elu; the result must still be
        # correct (it routes through the base-class composition).
        matrix = _random_csr(40, 40, 0.1, seed=11)
        x = Tensor(np.random.default_rng(12).standard_normal((40, 4)))
        from repro.autograd.functional import elu

        out = get_kernel("fused").spmm_epilogue(matrix, x, activation="elu")
        np.testing.assert_array_equal(out.data, elu(spmm(matrix, x)).data)


# ----------------------------------------------------------- model parity
class TestModelParity:
    @pytest.mark.parametrize("arch", ["gcn", "sage", "gat"])
    @pytest.mark.parametrize("kernel_name", KERNEL_NAMES)
    def test_forward_backward_vs_legacy_path(self, small_graph, arch, kernel_name):
        """Every conv type, every kernel, against the ``kernel=None``
        pre-refactor path: bit-exact for ``reference``, tolerance-bounded
        otherwise (forward output and every parameter gradient)."""

        def run(kernel):
            model = build_model(
                arch,
                small_graph.feature_dim,
                small_graph.num_classes,
                hidden_channels=16,
                dropout_p=0.0,
                seed=42,
            )
            model.train()
            prop = Propagation.from_graph(small_graph, kernel=kernel)
            out = model(Tensor(small_graph.features), prop)
            loss = nll_loss(out, small_graph.labels)
            loss.backward()
            return out.data, [p.grad for p in model.parameters()]

        legacy_out, legacy_grads = run(None)
        kernel = get_kernel(kernel_name)
        out, grads = run(kernel)
        if kernel.bit_exact:
            np.testing.assert_array_equal(out, legacy_out)
            for got, want in zip(grads, legacy_grads, strict=True):
                np.testing.assert_array_equal(got, want)
        else:
            np.testing.assert_allclose(out, legacy_out, **TOL)
            for got, want in zip(grads, legacy_grads, strict=True):
                np.testing.assert_allclose(got, want, rtol=1e-3, atol=1e-4)


# -------------------------------------------------------- loss trajectory
class TestLossTrajectoryGuard:
    def _losses(self, small_graph, kernel_name, *, legacy=False):
        task = TaskSpec(dataset="tiny", arch="gcn", epochs=2, lr=0.02)
        config = TrainingConfig(
            batch_size=128, hidden_channels=16, kernel=kernel_name
        )
        backend = RuntimeBackend(task, config, graph=small_graph)
        if legacy:  # exercise the exact pre-refactor spmm code path
            backend.kernel = None
            backend._full_prop.kernel = None
        report = backend.train()
        return np.array([e.loss for e in report.epochs]), report.accuracy

    def test_reference_bit_identical_to_legacy(self, small_graph):
        legacy_losses, legacy_acc = self._losses(
            small_graph, "reference", legacy=True
        )
        losses, acc = self._losses(small_graph, "reference")
        np.testing.assert_array_equal(losses, legacy_losses)
        assert acc == legacy_acc

    @pytest.mark.parametrize("kernel_name", OPTIMIZED)
    def test_optimized_within_tolerance(self, small_graph, kernel_name):
        legacy_losses, _ = self._losses(small_graph, "reference", legacy=True)
        losses, _ = self._losses(small_graph, kernel_name)
        np.testing.assert_allclose(losses, legacy_losses, rtol=1e-3, atol=1e-4)


# -------------------------------------------------------- plans + counters
class TestPlansAndCounters:
    def test_plan_cached_per_matrix_and_invalidated_on_mutation(self):
        kernel = ReorderKernel()
        matrix = _random_csr(64, 64, 0.1, seed=13)
        builds = []

        def build(m):
            builds.append(m)
            return "plan"

        assert kernel._plan(matrix, build) == "plan"
        assert kernel._plan(matrix, build) == "plan"
        assert len(builds) == 1  # cached across calls, same topology
        # Rebinding the CSR arrays (in-place topology change) must miss.
        matrix.indices = matrix.indices.copy()
        assert kernel._plan(matrix, build) == "plan"
        assert len(builds) == 2
        # A new matrix object naturally starts cold.
        other = _random_csr(64, 64, 0.1, seed=14)
        kernel._plan(other, build)
        assert len(builds) == 3

    def test_parallel_blocks_are_nnz_balanced_and_exact(self, monkeypatch):
        import repro.runtime.kernels.parallel as par

        monkeypatch.setattr(par, "MIN_PARALLEL_NNZ", 1)
        kernel = ParallelKernel(num_workers=4)
        try:
            # skewed matrix: hub rows first, then a long sparse tail
            matrix = sp.vstack(
                [
                    _random_csr(8, 300, 0.9, seed=15),
                    _random_csr(292, 300, 0.01, seed=16),
                ]
            ).tocsr()
            plan = kernel._build_plan(matrix)
            assert plan is not None and len(plan) >= 2
            assert plan[0][0] == 0 and plan[-1][1] == matrix.shape[0]
            sizes = [matrix.indptr[hi] - matrix.indptr[lo] for lo, hi, _ in plan]
            assert max(sizes) <= 2 * (matrix.nnz / len(plan)) + max(
                np.diff(matrix.indptr)
            )
            dense = np.random.default_rng(17).standard_normal((300, 5))
            np.testing.assert_allclose(
                kernel._matmul(matrix, dense), matrix @ dense, **TOL
            )
        finally:
            kernel.close()

    def test_parallel_close_is_idempotent(self):
        kernel = ParallelKernel(num_workers=2)
        kernel.close()
        kernel.close()

    def test_counters_accumulate_per_kernel(self):
        reset_kernel_counters()
        matrix = _random_csr(30, 30, 0.2, seed=18)
        x = Tensor(np.random.default_rng(19).standard_normal((30, 3)))
        get_kernel("reference").spmm(matrix, x)
        counters = kernel_counters()
        assert counters["reference"]["calls"] >= 1
        assert counters["reference"]["seconds"] >= 0.0
        reset_kernel_counters()
        assert kernel_counters() == {}


# ------------------------------------------------------ backend threading
class TestBackendThreading:
    @pytest.mark.parametrize("kernel_name", KERNEL_NAMES)
    def test_backend_selects_configured_kernel(self, small_graph, kernel_name):
        task = TaskSpec(dataset="tiny", arch="sage", epochs=1)
        backend = RuntimeBackend(
            task,
            TrainingConfig(kernel=kernel_name, hidden_channels=16),
            graph=small_graph,
        )
        assert backend.kernel.name == kernel_name
        assert backend._full_prop.kernel is backend.kernel

    def test_server_exposes_and_sweeps_kernel_gauges(self, tmp_path):
        from repro.serving import NavigationServer
        from repro.serving.metrics import labeled

        server = NavigationServer(workers=1, cache_dir=None, autostart=False)
        name = labeled("kernel_spmm_calls", kernel="reference")
        assert name in server.metrics.snapshot()
        server.stop()
        assert name not in server.metrics.snapshot()
        server.start()  # restart re-registers the labeled series
        try:
            assert name in server.metrics.snapshot()
        finally:
            server.stop()
