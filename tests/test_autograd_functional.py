"""Gradient checks and behaviour tests for activations, losses, sparse ops."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    concat,
    cross_entropy,
    default_dtype,
    dropout,
    elu,
    exp,
    gather,
    leaky_relu,
    log,
    log_softmax,
    nll_loss,
    normalized_adjacency,
    relu,
    scatter_add,
    scatter_mean,
    segment_softmax,
    sigmoid,
    spmm,
    tanh,
)
from tests.test_autograd_tensor import check_gradient


class TestActivationGradients:
    def test_relu(self):
        check_gradient(lambda t: relu(t), (4, 3), seed=1)

    def test_leaky_relu(self):
        check_gradient(lambda t: leaky_relu(t, 0.1), (4, 3), seed=2)

    def test_elu(self):
        check_gradient(lambda t: elu(t), (4, 3), seed=3)

    def test_exp_log(self):
        check_gradient(lambda t: log(exp(t) + 1.0), (5,), seed=4)

    def test_sigmoid(self):
        check_gradient(lambda t: sigmoid(t), (6,), seed=5)

    def test_tanh(self):
        check_gradient(lambda t: tanh(t), (6,), seed=6)

    def test_log_softmax(self):
        check_gradient(lambda t: log_softmax(t, axis=-1), (4, 5), seed=7)

    def test_concat(self):
        check_gradient(
            lambda t: concat([t * 2.0, t + 1.0], axis=1), (3, 2), seed=8
        )


class TestLosses:
    def test_nll_matches_manual(self):
        logp = np.log(np.array([[0.7, 0.3], [0.2, 0.8]]))
        targets = np.array([0, 1])
        loss = nll_loss(Tensor(logp), targets)
        expected = -(np.log(0.7) + np.log(0.8)) / 2
        assert loss.item() == pytest.approx(expected, rel=1e-5)

    def test_cross_entropy_gradient(self):
        targets = np.array([0, 2, 1])
        check_gradient(lambda t: cross_entropy(t, targets), (3, 4), seed=9)

    def test_nll_rejects_bad_targets(self):
        with pytest.raises(ValueError):
            nll_loss(Tensor(np.zeros((2, 3))), np.array([[0, 1]]))

    def test_perfect_prediction_loss_near_zero(self):
        logits = Tensor(np.array([[50.0, 0.0], [0.0, 50.0]]))
        loss = cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-6


class TestDropout:
    def test_eval_mode_is_identity(self):
        x = Tensor(np.ones((10, 10)))
        out = dropout(x, 0.5, training=False)
        assert out is x

    def test_zero_p_is_identity(self):
        x = Tensor(np.ones(5))
        assert dropout(x, 0.0) is x

    def test_scaling_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = dropout(x, 0.4, rng=rng)
        assert out.numpy().mean() == pytest.approx(1.0, abs=0.02)

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            dropout(Tensor([1.0]), 1.0)

    def test_gradient_masks_match_forward(self):
        rng = np.random.default_rng(1)
        x = Tensor(np.ones((8, 8)), requires_grad=True)
        out = dropout(x, 0.5, rng=rng)
        out.sum().backward()
        dropped = out.numpy() == 0
        assert np.all(x.grad[dropped] == 0)
        assert np.all(x.grad[~dropped] == 2.0)


class TestSparseOps:
    def test_gather_forward(self):
        x = Tensor(np.arange(6.0).reshape(3, 2))
        out = gather(x, np.array([2, 0]))
        np.testing.assert_allclose(out.numpy(), [[4.0, 5.0], [0.0, 1.0]])

    def test_gather_gradient(self):
        idx = np.array([0, 1, 1, 2])
        check_gradient(lambda t: gather(t, idx) * 2.0, (3, 2), seed=10)

    def test_scatter_add_forward(self):
        src = Tensor(np.ones((4, 2)))
        out = scatter_add(src, np.array([0, 0, 1, 1]), 3)
        np.testing.assert_allclose(out.numpy(), [[2, 2], [2, 2], [0, 0]])

    def test_scatter_add_gradient(self):
        idx = np.array([0, 1, 1, 0])
        check_gradient(lambda t: scatter_add(t, idx, 2), (4, 3), seed=11)

    def test_scatter_add_rejects_mismatch(self):
        with pytest.raises(ValueError):
            scatter_add(Tensor(np.ones((3, 2))), np.array([0, 1]), 2)

    def test_scatter_mean_empty_bucket_zero(self):
        src = Tensor(np.ones((2, 2)))
        out = scatter_mean(src, np.array([0, 0]), 3)
        np.testing.assert_allclose(out.numpy()[1:], 0.0)
        np.testing.assert_allclose(out.numpy()[0], 1.0)

    def test_segment_softmax_sums_to_one(self):
        vals = Tensor(np.random.default_rng(2).normal(size=(6, 2)))
        seg = np.array([0, 0, 0, 1, 1, 2])
        out = segment_softmax(vals, seg, 3).numpy()
        for s in range(3):
            np.testing.assert_allclose(out[seg == s].sum(axis=0), 1.0, rtol=1e-5)

    def test_segment_softmax_gradient(self):
        seg = np.array([0, 0, 1, 1, 1])
        check_gradient(
            lambda t: segment_softmax(t, seg, 2) * np.arange(10).reshape(5, 2),
            (5, 2),
            seed=12,
        )

    def test_segment_softmax_matrix_path_matches(self):
        import scipy.sparse as sp

        rng = np.random.default_rng(3)
        seg = np.sort(rng.integers(0, 4, size=12))
        vals = rng.normal(size=(12, 3))
        mat = sp.csr_matrix(
            (np.ones(12), (seg, np.arange(12))), shape=(4, 12)
        )
        with default_dtype(np.float64):
            a = segment_softmax(Tensor(vals), seg, 4).numpy()
            b = segment_softmax(Tensor(vals), seg, 4, scatter_matrix=mat).numpy()
        np.testing.assert_allclose(a, b, rtol=1e-10)


class TestSpmm:
    def test_forward_matches_dense(self):
        adj = normalized_adjacency(
            np.array([0, 1, 2]), np.array([1, 0]), 2, dtype=np.float64
        )
        x = np.array([[1.0], [2.0]])
        out = spmm(adj, Tensor(x))
        np.testing.assert_allclose(out.numpy(), adj.toarray() @ x, rtol=1e-6)

    def test_gradient(self):
        adj = normalized_adjacency(
            np.array([0, 2, 3, 5]),
            np.array([1, 2, 0, 0, 1]),
            3,
            dtype=np.float64,
        )
        check_gradient(lambda t: spmm(adj, t), (3, 4), seed=13)

    def test_gradient_with_cached_transpose(self):
        adj = normalized_adjacency(
            np.array([0, 2, 3, 5]),
            np.array([1, 2, 0, 0, 1]),
            3,
            mode="row",
            dtype=np.float64,
        )
        adj_t = adj.T.tocsr()
        check_gradient(
            lambda t: spmm(adj, t, transposed=adj_t), (3, 2), seed=14
        )


class TestNormalizedAdjacency:
    def test_sym_is_symmetric(self):
        # Symmetric input adjacency (the CSRGraph contract): 0-1, 0-2, 1-2.
        adj = normalized_adjacency(
            np.array([0, 2, 4, 6]),
            np.array([1, 2, 0, 2, 0, 1]),
            3,
            dtype=np.float64,
        )
        dense = adj.toarray()
        np.testing.assert_allclose(dense, dense.T, rtol=1e-12)

    def test_row_rows_sum_to_one(self):
        adj = normalized_adjacency(
            np.array([0, 2, 3, 5]),
            np.array([1, 2, 0, 0, 1]),
            3,
            mode="row",
            dtype=np.float64,
        )
        np.testing.assert_allclose(adj.toarray().sum(axis=1), 1.0, rtol=1e-12)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            normalized_adjacency(np.array([0, 0]), np.array([]), 1, mode="col")
