"""Cross-task estimator transfer tests (the ``repro.transfer`` subsystem).

Covers the stack bottom-up: fingerprint identity and its noise-robust
quantization, the store's fingerprint sidecar (including crash atomicity of
the two-file write), similarity metrics and deterministic corpus search,
similarity-decayed donor weights, weighted estimator fitting, and the two
system-level contracts — a warm start profiles measurably fewer candidates
than a cold one on a sibling task, and an *empty* corpus leaves navigation
bit-identical to a navigator built without transfer at all.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.config.settings import TaskSpec, TrainingConfig
from repro.errors import EstimatorError
from repro.estimator.blackbox import DecisionTreeRegressor, RandomForestRegressor
from repro.estimator.graybox import GrayBoxEstimator
from repro.explorer.navigator import GNNavigator
from repro.graphs.generators import powerlaw_community_graph
from repro.graphs.profiling import GraphProfile
from repro.runtime.parallel import ResultStore
from repro.runtime.profiler import GroundTruthRecord
from repro.serving.types import NavigationRequest
from repro.transfer import (
    AnchorRankSimilarity,
    FeatureSpaceSimilarity,
    TaskFingerprint,
    TransferContext,
    TransferCorpus,
    TransferPolicy,
    donor_weights,
    task_fingerprint,
)
from repro.transfer.corpus import _spearman, get_similarity
from repro.transfer.fingerprint import record_fingerprint


def _profile(name="x", *, num_nodes=2000, avg_degree=8.0, **overrides) -> GraphProfile:
    fields = dict(
        name=name,
        num_nodes=num_nodes,
        num_edges=int(num_nodes * avg_degree),
        feature_dim=32,
        num_classes=5,
        avg_degree=avg_degree,
        max_degree=60,
        degree_std=6.0,
        degree_skew=2.1,
        powerlaw_exponent=2.4,
        feature_bytes=num_nodes * 32 * 4,
        homophily=0.7,
        separability=0.8,
    )
    fields.update(overrides)
    return GraphProfile(**fields)


def _record(
    config: TrainingConfig,
    *,
    task: TaskSpec | None = None,
    profile: GraphProfile | None = None,
    time_s: float = 0.01,
) -> GroundTruthRecord:
    return GroundTruthRecord(
        config=config,
        task=task or TaskSpec(dataset="x", arch="sage", epochs=1),
        graph_profile=profile or _profile(),
        time_s=time_s,
        memory_bytes=1e6,
        accuracy=0.8,
        mean_batch_nodes=500.0,
        mean_batch_edges=2500.0,
        hit_rate=0.5,
        t_sample=1e-3,
        t_transfer=1e-3,
        t_replace=1e-4,
        t_compute=2e-3,
        num_batches=4,
    )


# ---------------------------------------------------------------- fingerprint
class TestTaskFingerprint:
    def test_id_is_content_addressed_not_name_addressed(self):
        task_a = TaskSpec(dataset="a", arch="sage", epochs=1)
        task_b = TaskSpec(dataset="b", arch="sage", epochs=1)
        profile = _profile()
        fp_a = task_fingerprint(task_a, profile)
        fp_b = task_fingerprint(task_b, profile)
        # Same statistics under different dataset names: same family.
        assert fp_a.fingerprint_id == fp_b.fingerprint_id
        assert fp_a.dataset != fp_b.dataset

    def test_id_changes_with_statistics(self):
        task = TaskSpec(dataset="a", arch="sage", epochs=1)
        fp1 = task_fingerprint(task, _profile(num_nodes=2000))
        fp2 = task_fingerprint(task, _profile(num_nodes=4000))
        assert fp1.fingerprint_id != fp2.fingerprint_id

    def test_quantization_absorbs_last_ulp_noise(self):
        task = TaskSpec(dataset="a", arch="sage", epochs=1)
        base = _profile(degree_skew=2.2485039741859834)
        wobble = _profile(degree_skew=2.248503974185984)  # one-ulp sibling
        assert (
            task_fingerprint(task, base).fingerprint_id
            == task_fingerprint(task, wobble).fingerprint_id
        )

    def test_compatible_gates_on_arch_and_platform(self):
        profile = _profile()
        sage = task_fingerprint(TaskSpec(dataset="a", arch="sage", epochs=1), profile)
        gcn = task_fingerprint(TaskSpec(dataset="a", arch="gcn", epochs=1), profile)
        a100 = task_fingerprint(
            TaskSpec(dataset="a", arch="sage", platform="a100", epochs=1), profile
        )
        assert sage.compatible(sage)
        assert not sage.compatible(gcn)
        assert not sage.compatible(a100)

    def test_dict_round_trip_including_non_finite(self):
        task = TaskSpec(dataset="a", arch="sage", epochs=1)
        fp = task_fingerprint(task, _profile(powerlaw_exponent=float("inf")))
        back = TaskFingerprint.from_dict(fp.to_dict())
        assert back == fp
        assert back.fingerprint_id == fp.fingerprint_id
        assert np.isfinite(back.as_features()).all()

    def test_from_dict_rejects_unknown_keys(self):
        task = TaskSpec(dataset="a", arch="sage", epochs=1)
        data = task_fingerprint(task, _profile()).to_dict()
        data["surprise"] = 1
        with pytest.raises(ValueError, match="unknown fingerprint keys"):
            TaskFingerprint.from_dict(data)


# -------------------------------------------------------------------- sidecar
class TestStoreSidecar:
    def test_save_writes_sidecar_and_discard_removes_both(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("k1", _record(TrainingConfig()))
        assert (tmp_path / "gt_k1.json").exists()
        assert (tmp_path / "meta_k1.json").exists()
        meta = store.load_meta("k1")
        assert meta["fingerprint_id"] == record_fingerprint(
            store.load("k1")
        ).fingerprint_id
        store.prune(max_entries=0)
        assert not (tmp_path / "gt_k1.json").exists()
        assert not (tmp_path / "meta_k1.json").exists()

    def test_ensure_meta_backfills_legacy_records(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("k1", _record(TrainingConfig()))
        (tmp_path / "meta_k1.json").unlink()  # a record from before sidecars
        assert store.load_meta("k1") is None
        payload = store.ensure_meta("k1")
        assert payload is not None
        assert (tmp_path / "meta_k1.json").exists()
        assert store.ensure_meta("missing") is None

    def test_crash_between_renames_never_leaves_record_without_sidecar(
        self, tmp_path, monkeypatch
    ):
        store = ResultStore(tmp_path)
        real_replace = os.replace

        def exploding_replace(src, dst):
            if os.path.basename(str(dst)).startswith("gt_"):
                raise OSError("simulated crash after sidecar, before record")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            store.save("k1", _record(TrainingConfig()))
        monkeypatch.undo()
        # The invariant is one-directional: a record implies its sidecar.
        # The crash window may leave an orphan sidecar (harmless: keyed
        # storage, overwritten on the next save) but never a bare record.
        assert store.load("k1") is None
        assert len(store) == 0
        store.save("k1", _record(TrainingConfig()))
        assert store.load("k1") is not None
        assert store.load_meta("k1") is not None


# ------------------------------------------------------- similarity + corpus
class TestSimilarity:
    def test_feature_similarity_is_one_for_identical_tasks(self):
        fp = task_fingerprint(TaskSpec(dataset="a", arch="sage", epochs=1), _profile())
        sim = FeatureSpaceSimilarity()
        assert sim.score(fp, fp, query_records=[], donor_records=[]) == pytest.approx(1.0)

    def test_feature_similarity_decreases_with_distance(self):
        task = TaskSpec(dataset="a", arch="sage", epochs=1)
        fp = task_fingerprint(task, _profile(num_nodes=2000))
        near = task_fingerprint(task, _profile(num_nodes=2200))
        far = task_fingerprint(task, _profile(num_nodes=200000, avg_degree=40.0))
        sim = FeatureSpaceSimilarity()
        s_near = sim.score(fp, near, query_records=[], donor_records=[])
        s_far = sim.score(fp, far, query_records=[], donor_records=[])
        assert 0.0 < s_far < s_near < 1.0

    def test_spearman_rank_correlation(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert _spearman(a, a * 10.0) == pytest.approx(1.0)
        assert _spearman(a, -a) == pytest.approx(-1.0)
        assert _spearman(a, np.ones(4)) == 0.0

    def test_anchor_similarity_falls_back_without_shared_anchors(self):
        task = TaskSpec(dataset="a", arch="sage", epochs=1)
        fp = task_fingerprint(task, _profile())
        sim = AnchorRankSimilarity()
        fallback = FeatureSpaceSimilarity().score(
            fp, fp, query_records=[], donor_records=[]
        )
        assert sim.score(fp, fp, query_records=[], donor_records=[]) == pytest.approx(
            fallback
        )

    def test_get_similarity_registry(self):
        assert isinstance(get_similarity("feature"), FeatureSpaceSimilarity)
        assert isinstance(get_similarity("anchor"), AnchorRankSimilarity)
        with pytest.raises(ValueError, match="unknown similarity"):
            get_similarity("nope")


class TestTransferCorpus:
    def _seed_store(self, tmp_path) -> ResultStore:
        store = ResultStore(tmp_path)
        rng = np.random.default_rng(0)
        for fam, nodes in (("a", 2000), ("b", 2400), ("c", 60000)):
            profile = _profile(name=fam, num_nodes=nodes)
            task = TaskSpec(dataset=fam, arch="sage", epochs=1)
            for i in range(4):
                config = TrainingConfig(batch_size=int(rng.choice([64, 128, 256])))
                store.save(
                    f"{fam}-{i}",
                    _record(config, task=task, profile=profile),
                )
        return store

    def test_refresh_groups_by_family(self, tmp_path):
        corpus = TransferCorpus(self._seed_store(tmp_path))
        assert corpus.refresh() == 3
        assert corpus.num_records == 12
        assert all(t.num_records == 4 for t in corpus.tasks())

    def test_similar_is_deterministic_and_excludes_self(self, tmp_path):
        store = self._seed_store(tmp_path)
        query = task_fingerprint(
            TaskSpec(dataset="a", arch="sage", epochs=1), _profile(num_nodes=2000)
        )
        runs = []
        for _ in range(2):
            corpus = TransferCorpus(store)
            corpus.refresh()
            found = corpus.similar(query, similarity=get_similarity("feature"))
            runs.append([(t.fingerprint_id, s) for t, s, _ in found])
        assert runs[0] == runs[1]
        ids = [fid for fid, _ in runs[0]]
        assert query.fingerprint_id not in ids

    def test_similar_ranks_near_family_first(self, tmp_path):
        store = self._seed_store(tmp_path)
        corpus = TransferCorpus(store)
        corpus.refresh()
        query = task_fingerprint(
            TaskSpec(dataset="q", arch="sage", epochs=1), _profile(num_nodes=2100)
        )
        found = corpus.similar(query, similarity=get_similarity("feature"))
        datasets = [t.fingerprint.dataset for t, _, _ in found]
        assert datasets[0] in ("a", "b")
        assert datasets[-1] == "c"

    def test_similar_hard_gates_arch(self, tmp_path):
        corpus = TransferCorpus(self._seed_store(tmp_path))
        corpus.refresh()
        query = task_fingerprint(
            TaskSpec(dataset="q", arch="gcn", epochs=1), _profile()
        )
        assert corpus.similar(query, similarity=get_similarity("feature")) == []


# ------------------------------------------------------------------ warmstart
class TestDonorWeights:
    def test_weights_are_monotone_in_similarity(self):
        sims = np.array([0.1, 0.3, 0.5, 0.7, 0.9, 0.9])
        for decay in (0.5, 1.0, 2.0, 4.0):
            w = donor_weights(sims, decay=decay)
            assert np.all(np.diff(w) >= 0.0), f"not monotone at decay={decay}"
            assert np.all((w >= 0.0) & (w <= 1.0))

    def test_higher_decay_concentrates_on_near_twins(self):
        sims = np.array([0.5, 1.0])
        gentle = donor_weights(sims, decay=1.0)
        harsh = donor_weights(sims, decay=4.0)
        assert harsh[0] / harsh[1] < gentle[0] / gentle[1]

    def test_validation(self):
        with pytest.raises(ValueError, match="decay"):
            donor_weights(np.array([0.5]), decay=0.0)
        with pytest.raises(ValueError, match="similarities"):
            donor_weights(np.array([1.5]), decay=1.0)


class TestWeightedEstimators:
    def test_tree_none_weight_is_bit_identical(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(48, 4))
        y = x[:, 1] * 3.0 + rng.normal(scale=0.05, size=48)
        plain = DecisionTreeRegressor(random_state=0).fit(x, y)
        weighted = DecisionTreeRegressor(random_state=0).fit(x, y, sample_weight=None)
        probe = rng.normal(size=(16, 4))
        assert np.array_equal(plain.predict(probe), weighted.predict(probe))

    def test_forest_none_weight_is_bit_identical(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(48, 4))
        y = x[:, 0] + rng.normal(scale=0.05, size=48)
        plain = RandomForestRegressor(n_estimators=4, random_state=0).fit(x, y)
        weighted = RandomForestRegressor(n_estimators=4, random_state=0).fit(
            x, y, sample_weight=None
        )
        probe = rng.normal(size=(16, 4))
        assert np.array_equal(plain.predict(probe), weighted.predict(probe))

    def test_downweighted_outliers_lose_influence(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(80, 4))
        y = x[:, 0] * 2.0
        y_poisoned = y.copy()
        y_poisoned[:40] += 25.0
        w = np.ones(80)
        w[:40] = 1e-6
        tree = DecisionTreeRegressor(random_state=0).fit(
            x, y_poisoned, sample_weight=w
        )
        baseline = DecisionTreeRegressor(random_state=0).fit(x, y_poisoned)
        clean = slice(40, 80)
        assert (
            np.abs(tree.predict(x[clean]) - y[clean]).mean()
            < np.abs(baseline.predict(x[clean]) - y[clean]).mean()
        )

    def test_tree_rejects_bad_weights(self):
        x = np.zeros((4, 2))
        y = np.zeros(4)
        tree = DecisionTreeRegressor()
        with pytest.raises(EstimatorError):
            tree.fit(x, y, sample_weight=np.ones(3))
        with pytest.raises(EstimatorError):
            tree.fit(x, y, sample_weight=np.array([1.0, -1.0, 1.0, 1.0]))
        with pytest.raises(EstimatorError):
            tree.fit(x, y, sample_weight=np.zeros(4))

    def test_graybox_estimator_accepts_weights(self):
        rng = np.random.default_rng(6)
        records = [
            _record(
                TrainingConfig(batch_size=int(rng.choice([64, 128, 256]))),
                time_s=float(rng.uniform(0.005, 0.02)),
            )
            for _ in range(12)
        ]
        est = GrayBoxEstimator(random_state=0)
        est.fit(records, sample_weight=np.linspace(0.2, 1.0, 12))
        preds = est.predict(
            [records[0].config], [records[0].graph_profile], "rtx4090"
        )
        assert len(preds) == 1 and preds[0].time_s > 0

    def test_graybox_rejects_misaligned_weights(self):
        records = [_record(TrainingConfig(batch_size=64)) for _ in range(8)]
        with pytest.raises(EstimatorError, match="align"):
            GrayBoxEstimator().fit(records, sample_weight=np.ones(5))


# -------------------------------------------------------------- system level
def _family_graph(seed: int, nodes: int, name: str):
    return powerlaw_community_graph(
        nodes,
        num_classes=4,
        feature_dim=16,
        homophily=0.7,
        feature_noise=0.4,
        seed=seed,
        name=name,
    )


class TestWarmStartNavigation:
    BUDGET = 12

    def test_warm_start_reduces_profiled_runs(self, tmp_path):
        donor_graph = _family_graph(1, 130, "fam-a")
        target_graph = _family_graph(2, 140, "fam-b")
        donor_task = TaskSpec(dataset="fam-a", arch="sage", epochs=2)
        target_task = TaskSpec(dataset="fam-b", arch="sage", epochs=2)
        store_dir = str(tmp_path / "store")

        cold = GNNavigator(
            donor_task,
            graph=donor_graph,
            profile_budget=self.BUDGET,
            profile_epochs=1,
            seed=0,
            cache_dir=store_dir,
        )
        cold.fit_estimator()
        cold_runs = len(cold.records)

        corpus = TransferCorpus(ResultStore(store_dir))
        ctx = TransferContext(
            corpus, policy=TransferPolicy(min_similarity=0.2, min_budget=8)
        )
        warm = GNNavigator(
            target_task,
            graph=target_graph,
            profile_budget=self.BUDGET,
            profile_epochs=1,
            seed=0,
            transfer=ctx,
        )
        report = warm.explore(priorities=["balance"])

        plan = warm.transfer_plan
        assert plan is not None
        assert plan.budget < plan.full_budget
        assert plan.runs_saved == plan.full_budget - plan.budget
        assert len(warm.records) < cold_runs
        # The report advertises the warm start to clients.
        info = report.extras["transfer"]
        assert info["runs_saved"] == plan.runs_saved
        assert info["donors"]
        # And still yields a usable guideline.
        assert report.guidelines["balance"].score >= 0.0

    def test_empty_corpus_is_bit_identical_to_no_transfer(self, tmp_path):
        graph = _family_graph(3, 120, "fam-c")
        task = TaskSpec(dataset="fam-c", arch="sage", epochs=2)

        plain = GNNavigator(
            task, graph=graph, profile_budget=self.BUDGET, profile_epochs=1, seed=0
        )
        report_plain = plain.explore(priorities=["balance"])

        ctx = TransferContext(TransferCorpus(ResultStore(tmp_path / "empty")))
        wired = GNNavigator(
            task,
            graph=graph,
            profile_budget=self.BUDGET,
            profile_epochs=1,
            seed=0,
            transfer=ctx,
        )
        report_wired = wired.explore(priorities=["balance"])

        assert wired.transfer_plan is None
        assert "transfer" not in report_wired.extras
        g_plain = report_plain.guidelines["balance"]
        g_wired = report_wired.guidelines["balance"]
        assert g_plain.config == g_wired.config
        assert g_plain.score == g_wired.score
        assert g_plain.predicted == g_wired.predicted
        assert [c for c in report_plain.exploration.candidates] == [
            c for c in report_wired.exploration.candidates
        ]

    def test_disabled_policy_never_plans(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("k", _record(TrainingConfig()))
        ctx = TransferContext(
            TransferCorpus(store), policy=TransferPolicy(enabled=False)
        )
        plan = ctx.plan(
            TaskSpec(dataset="x", arch="sage", epochs=1),
            _profile(),
            full_budget=16,
        )
        assert plan is None


# ------------------------------------------------------------------ the wire
class TestTransferPolicyWire:
    def test_request_round_trips_transfer_policy(self):
        request = NavigationRequest(
            task=TaskSpec(dataset="tiny", arch="sage", epochs=1),
            transfer_policy=TransferPolicy(
                similarity="anchor", min_similarity=0.5, max_donors=2, decay=3.0
            ),
        )
        back = NavigationRequest.from_dict(request.to_dict())
        assert back.transfer_policy == request.transfer_policy
        assert back == request

    def test_request_without_policy_omits_the_key(self):
        request = NavigationRequest(
            task=TaskSpec(dataset="tiny", arch="sage", epochs=1)
        )
        spec = request.to_dict()
        assert "transfer_policy" not in spec
        assert NavigationRequest.from_dict(spec).transfer_policy is None

    def test_unknown_policy_key_rejected_at_submit(self):
        spec = NavigationRequest(
            task=TaskSpec(dataset="tiny", arch="sage", epochs=1),
            transfer_policy=TransferPolicy(),
        ).to_dict()
        spec["transfer_policy"]["surprise"] = 1
        with pytest.raises(ValueError, match="unknown transfer policy keys"):
            NavigationRequest.from_dict(spec)

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="similarity"):
            TransferPolicy(similarity="nope")
        with pytest.raises(ValueError, match="min_similarity"):
            TransferPolicy(min_similarity=1.5)
        with pytest.raises(ValueError, match="max_donors"):
            TransferPolicy(max_donors=0)
        with pytest.raises(ValueError, match="decay"):
            TransferPolicy(decay=-1.0)
        with pytest.raises(ValueError, match="min_budget"):
            TransferPolicy(min_budget=2)
        with pytest.raises(ValueError, match="max_shrink"):
            TransferPolicy(max_shrink=1.0)
