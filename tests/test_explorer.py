"""Explorer tests: objectives, constraints, Pareto, DFS, decisions, navigator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DesignSpace, TaskSpec, TrainingConfig
from repro.errors import ExplorationError
from repro.estimator import GrayBoxEstimator
from repro.estimator.graybox import PredictedPerf
from repro.explorer import (
    DecisionMaker,
    DFSExplorer,
    ExploreTarget,
    GNNavigator,
    PRIORITY_PRESETS,
    RuntimeConstraint,
    dominates,
    get_target,
    hypervolume_2d,
    normalize_objectives,
    pareto_front_indices,
    pareto_mask,
)
from repro.explorer.dfs import ExplorationResult
from repro.graphs.profiling import profile_graph
from repro.hardware import get_platform
from tests.test_estimator_graybox import _profiling_records


@pytest.fixture(scope="module")
def fitted_estimator(small_graph):
    records = _profiling_records(small_graph, n=16, seed=20)
    return GrayBoxEstimator().fit(records)


@pytest.fixture(scope="module")
def tiny_space() -> DesignSpace:
    return DesignSpace(
        {
            "batch_size": (32, 64),
            "sampler": ("sage", "biased"),
            "bias_rate": (0.0, 0.9),
            "cache_ratio": (0.0, 0.3),
            "cache_policy": ("none", "static"),
            "hidden_channels": (8, 16),
        },
        base=TrainingConfig(hop_list=(3, 2)),
    )


class TestObjectives:
    def test_presets_exist(self):
        assert set(PRIORITY_PRESETS) == {"balance", "ex_tm", "ex_ma", "ex_ta"}

    def test_get_target_normalises_name(self):
        assert get_target("EX-TM").name == "ex_tm"

    def test_unknown_target(self):
        with pytest.raises(ExplorationError):
            get_target("speed")

    def test_weights_sum_to_one(self):
        for target in PRIORITY_PRESETS.values():
            assert target.weights().sum() == pytest.approx(1.0)

    def test_score_prefers_lower(self):
        target = get_target("balance")
        objs = normalize_objectives(
            np.array([[1.0, 1.0, -0.5], [2.0, 2.0, -0.4]])
        )
        scores = target.score(objs)
        assert scores[0] < scores[1]

    def test_extreme_weighting(self):
        # ex_tm must rank a fast/lean/inaccurate config above a slow/fat/
        # accurate one; balance ranks them closer.
        objs = normalize_objectives(
            np.array([[0.0, 0.0, 0.0], [1.0, 1.0, -1.0]])
        )
        tm_scores = get_target("ex_tm").score(objs)
        assert tm_scores[0] < tm_scores[1]

    def test_rejects_negative_weights(self):
        with pytest.raises(ExplorationError):
            ExploreTarget("bad", -1.0, 1.0, 1.0)

    def test_rejects_all_zero(self):
        with pytest.raises(ExplorationError):
            ExploreTarget("bad", 0.0, 0.0, 0.0)


class TestConstraints:
    def test_unbounded(self):
        assert RuntimeConstraint().is_unbounded()

    def test_bounds_checked(self):
        c = RuntimeConstraint(max_time_s=1.0, max_memory_bytes=100.0, min_accuracy=0.5)
        ok = PredictedPerf(time_s=0.5, memory_bytes=50, accuracy=0.9)
        slow = PredictedPerf(time_s=2.0, memory_bytes=50, accuracy=0.9)
        fat = PredictedPerf(time_s=0.5, memory_bytes=500, accuracy=0.9)
        dumb = PredictedPerf(time_s=0.5, memory_bytes=50, accuracy=0.1)
        assert c.satisfied_by(ok)
        assert not c.satisfied_by(slow)
        assert not c.satisfied_by(fat)
        assert not c.satisfied_by(dumb)

    def test_slack_relaxes(self):
        c = RuntimeConstraint(max_time_s=1.0)
        near = PredictedPerf(time_s=1.1, memory_bytes=0.1, accuracy=1.0)
        assert not c.satisfied_by(near)
        assert c.satisfied_by(near, slack=0.2)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ExplorationError):
            RuntimeConstraint(max_time_s=-1.0)
        with pytest.raises(ExplorationError):
            RuntimeConstraint(min_accuracy=1.5)

    def test_describe(self):
        c = RuntimeConstraint(max_time_s=0.5, min_accuracy=0.8)
        assert "T<=" in c.describe() and "Acc>=" in c.describe()


class TestPareto:
    def test_dominates(self):
        assert dominates(np.array([1, 1]), np.array([2, 2]))
        assert not dominates(np.array([1, 2]), np.array([2, 1]))
        assert not dominates(np.array([1, 1]), np.array([1, 1]))

    def test_mask_simple(self):
        objs = np.array([[1, 2], [2, 1], [2, 2], [3, 3]])
        mask = pareto_mask(objs)
        assert mask.tolist() == [True, True, False, False]

    def test_front_sorted_by_first_objective(self):
        objs = np.array([[2, 1], [1, 2], [3, 3]])
        idx = pareto_front_indices(objs)
        assert objs[idx][0, 0] <= objs[idx][-1, 0]

    def test_duplicates_both_kept(self):
        objs = np.array([[1, 1], [1, 1], [2, 2]])
        mask = pareto_mask(objs)
        assert mask[0] and mask[1] and not mask[2]

    def test_empty(self):
        assert pareto_mask(np.zeros((0, 3))).size == 0

    def test_hypervolume_rectangle(self):
        objs = np.array([[1.0, 1.0]])
        assert hypervolume_2d(objs, np.array([2.0, 2.0])) == pytest.approx(1.0)

    def test_hypervolume_monotone_in_front_quality(self):
        ref = np.array([10.0, 10.0])
        worse = hypervolume_2d(np.array([[5.0, 5.0]]), ref)
        better = hypervolume_2d(np.array([[5.0, 5.0], [2.0, 8.0]]), ref)
        assert better > worse

    def test_hypervolume_requires_2d(self):
        with pytest.raises(ExplorationError):
            hypervolume_2d(np.zeros((1, 3)), np.zeros(3))


class TestDFSExplorer:
    def test_unconstrained_explores_everything(
        self, tiny_space, fitted_estimator, small_graph
    ):
        explorer = DFSExplorer(
            tiny_space, fitted_estimator, profile_graph(small_graph),
            get_platform("rtx4090"),
        )
        result = explorer.explore()
        # Raw leaf visits cover the whole cartesian product; canonical
        # deduplication shrinks the evaluated candidate set.
        assert result.visited_leaves == tiny_space.raw_size()
        assert result.pruned_subtrees == 0
        assert len(result.candidates) == len(tiny_space.enumerate())
        assert len(result.candidates) == len(result.predictions)

    def test_constraints_prune(self, tiny_space, fitted_estimator, small_graph):
        explorer = DFSExplorer(
            tiny_space, fitted_estimator, profile_graph(small_graph),
            get_platform("rtx4090"),
        )
        free = explorer.explore()
        # Memory barely varies on the tiny fixture (runtime floor dominates);
        # epoch time spreads with batch size and caching, so constrain that.
        times = np.array([p.time_s for p in free.predictions])
        tight = RuntimeConstraint(max_time_s=float(np.percentile(times, 5)))
        constrained = explorer.explore(constraint=tight)
        assert len(constrained.candidates) < len(free.candidates)

    def test_infeasible_constraint_raises(
        self, tiny_space, fitted_estimator, small_graph
    ):
        explorer = DFSExplorer(
            tiny_space, fitted_estimator, profile_graph(small_graph),
            get_platform("rtx4090"),
        )
        with pytest.raises(ExplorationError):
            explorer.explore(
                constraint=RuntimeConstraint(max_memory_bytes=1.0)
            )

    def test_initial_candidates_included(
        self, tiny_space, fitted_estimator, small_graph
    ):
        seed_cfg = TrainingConfig(
            batch_size=96, hop_list=(3, 2), hidden_channels=8
        )
        explorer = DFSExplorer(
            tiny_space, fitted_estimator, profile_graph(small_graph),
            get_platform("rtx4090"),
        )
        result = explorer.explore(initial_candidates=[seed_cfg])
        assert seed_cfg.canonical() in result.candidates


class TestDecisionMaker:
    def _result(self) -> ExplorationResult:
        configs = [
            TrainingConfig(batch_size=32),
            TrainingConfig(batch_size=64),
            TrainingConfig(batch_size=128),
        ]
        preds = [
            PredictedPerf(time_s=1.0, memory_bytes=300.0, accuracy=0.9),
            PredictedPerf(time_s=0.5, memory_bytes=200.0, accuracy=0.7),
            PredictedPerf(time_s=2.0, memory_bytes=400.0, accuracy=0.8),  # dominated
        ]
        return ExplorationResult(candidates=configs, predictions=preds)

    def test_front_excludes_dominated(self):
        dm = DecisionMaker(self._result())
        front_configs = [c for c, _ in dm.front()]
        assert TrainingConfig(batch_size=128) not in front_configs

    def test_priorities_pick_differently(self):
        dm = DecisionMaker(self._result())
        fast = dm.choose(get_target("ex_tm"))
        accurate = dm.choose(get_target("ex_ma"))
        assert fast.predicted.time_s <= accurate.predicted.time_s
        assert accurate.predicted.accuracy >= fast.predicted.accuracy

    def test_accuracy_floor_filters(self):
        dm = DecisionMaker(self._result())
        g = dm.choose(get_target("ex_tm"), accuracy_drop=0.05)
        # Floor 0.9-0.05 excludes the 0.7 candidate.
        assert g.predicted.accuracy >= 0.85

    def test_floor_fallback_when_empty(self):
        dm = DecisionMaker(self._result())
        g = dm.choose(get_target("balance"), accuracy_drop=-0.01)
        assert g is not None  # falls back to the full front

    def test_choose_all(self):
        dm = DecisionMaker(self._result())
        guidelines = dm.choose_all([get_target("balance"), get_target("ex_tm")])
        assert set(guidelines) == {"balance", "ex_tm"}

    def test_empty_result_rejected(self):
        with pytest.raises(ExplorationError):
            DecisionMaker(ExplorationResult(candidates=[], predictions=[]))


class TestNavigator:
    def test_end_to_end_tiny(self, small_graph, tiny_space):
        task = TaskSpec(dataset="tiny", arch="sage", epochs=2)
        nav = GNNavigator(
            task,
            space=tiny_space,
            graph=small_graph,
            profile_budget=10,
            profile_epochs=1,
        )
        report = nav.explore(priorities=["balance"])
        assert "balance" in report.guidelines
        guideline = report.guidelines["balance"]
        perf = nav.apply(guideline)
        assert perf.time_s > 0
        assert report.exploration.evaluated >= len(tiny_space.enumerate())

    def test_guideline_describe(self, small_graph, tiny_space):
        task = TaskSpec(dataset="tiny", arch="sage", epochs=1)
        nav = GNNavigator(
            task,
            space=tiny_space,
            graph=small_graph,
            profile_budget=10,
            profile_epochs=1,
        )
        report = nav.explore(priorities=["ex_tm"])
        desc = report.guidelines["ex_tm"].describe()
        assert "ex_tm" in desc and "T~" in desc

    def test_budget_validated(self, small_graph):
        with pytest.raises(ExplorationError):
            GNNavigator(
                TaskSpec(dataset="tiny", arch="sage"),
                graph=small_graph,
                profile_budget=2,
            )
