"""Hardware simulation tests: specs, cache policies, cost and memory models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import HardwareError
from repro.hardware import (
    CACHE_POLICIES,
    DeviceCache,
    DeviceSpec,
    HostSpec,
    LinkSpec,
    PLATFORMS,
    batch_time,
    gamma_cache,
    gamma_model,
    gamma_runtime,
    get_platform,
    model_costing,
    t_compute,
    t_replace,
    t_sample,
    t_transfer,
)


class TestSpecs:
    def test_catalog_contains_paper_devices(self):
        assert {"rtx4090", "a100", "m90"} <= set(PLATFORMS)

    def test_lookup_case_insensitive(self):
        assert get_platform("RTX4090").name == "rtx4090"

    def test_unknown_platform(self):
        with pytest.raises(HardwareError):
            get_platform("h100")

    def test_effective_bandwidth_below_both(self):
        link = LinkSpec("l", pcie_bandwidth_gbps=32.0, gather_bandwidth_gbps=1.0, latency_s=0.0)
        eff = link.effective_bytes_per_s
        assert eff < 1.0e9 and eff < 32.0e9

    def test_rejects_bad_specs(self):
        with pytest.raises(HardwareError):
            HostSpec("h", cores=0, sample_rate_vps=1e6, sample_overhead_s=0)
        with pytest.raises(HardwareError):
            DeviceSpec("d", memory_bytes=0, fp32_tflops=1, mem_bandwidth_gbps=1, kernel_overhead_s=0)
        with pytest.raises(HardwareError):
            LinkSpec("l", pcie_bandwidth_gbps=-1, gather_bandwidth_gbps=1, latency_s=0)

    def test_as_features_length(self):
        assert len(get_platform("a100").as_features()) == 6


class TestDeviceCache:
    def test_policies_list(self):
        assert CACHE_POLICIES == ("none", "static", "fifo", "lru")

    def test_static_prefills_priority(self):
        cache = DeviceCache(10, 3, policy="static", priority=np.array([5, 7, 9, 1]))
        assert set(cache.hot_nodes()) == {5, 7, 9}
        assert cache.occupancy == 3

    def test_static_never_updates(self):
        cache = DeviceCache(10, 2, policy="static", priority=np.arange(10))
        cache.lookup(np.array([8, 9]))
        admitted, evicted = cache.update(np.array([8, 9]))
        assert admitted == evicted == 0
        assert set(cache.hot_nodes()) == {0, 1}

    def test_hit_statistics(self):
        cache = DeviceCache(10, 2, policy="static", priority=np.arange(10))
        mask = cache.lookup(np.array([0, 1, 5]))
        assert mask.tolist() == [True, True, False]
        assert cache.stats.hits == 2
        assert cache.stats.lookups == 3
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_fifo_evicts_oldest(self):
        cache = DeviceCache(10, 2, policy="fifo")
        cache.update(np.array([1]))
        cache.update(np.array([2]))
        cache.update(np.array([3]))  # evicts 1
        assert set(cache.hot_nodes()) == {2, 3}

    def test_lru_refreshes_on_hit(self):
        cache = DeviceCache(10, 2, policy="lru")
        cache.update(np.array([1]))
        cache.update(np.array([2]))
        cache.lookup(np.array([1]))  # touch 1, making 2 the LRU victim
        cache.update(np.array([3]))
        assert set(cache.hot_nodes()) == {1, 3}

    def test_none_policy_never_holds(self):
        cache = DeviceCache(10, 0, policy="none")
        cache.update(np.arange(5))
        assert cache.occupancy == 0
        assert not cache.lookup(np.arange(5)).any()

    def test_oversized_admission_clipped(self):
        cache = DeviceCache(100, 5, policy="fifo")
        admitted, evicted = cache.update(np.arange(50))
        assert admitted == 5
        assert cache.occupancy == 5

    def test_capacity_bounds(self):
        with pytest.raises(HardwareError):
            DeviceCache(10, 11)
        with pytest.raises(HardwareError):
            DeviceCache(10, -1)

    def test_static_requires_priority(self):
        with pytest.raises(HardwareError):
            DeviceCache(10, 2, policy="static")

    def test_is_resident_does_not_count(self):
        cache = DeviceCache(10, 2, policy="static", priority=np.arange(10))
        cache.is_resident(np.array([0, 5]))
        assert cache.stats.lookups == 0

    def test_reset_stats_keeps_contents(self):
        cache = DeviceCache(10, 2, policy="static", priority=np.arange(10))
        cache.lookup(np.array([0]))
        cache.reset_stats()
        assert cache.stats.lookups == 0
        assert cache.occupancy == 2

    def test_admitted_nodes_hit_next_time(self):
        cache = DeviceCache(50, 10, policy="lru")
        nodes = np.arange(8)
        cache.update(nodes)
        assert cache.lookup(nodes).all()


class TestCostModel:
    def setup_method(self):
        self.platform = get_platform("rtx4090")

    def test_sample_time_monotone(self):
        assert t_sample(1000, self.platform) < t_sample(100_000, self.platform)

    def test_transfer_zero_when_all_hit(self):
        assert t_transfer(0, 100, self.platform) == 0.0

    def test_transfer_scales_with_features(self):
        t1 = t_transfer(1000, 50, self.platform)
        t2 = t_transfer(1000, 500, self.platform)
        assert t2 > t1 * 5

    def test_replace_zero_without_updates(self):
        assert t_replace(0, 0, 100, self.platform) == 0.0

    def test_compute_roofline_picks_slower_bound(self):
        costing = model_costing(
            "sage", 4000, 30_000, in_dim=96, hidden_dim=64, out_dim=40, num_layers=2
        )
        t = t_compute(costing, self.platform)
        device = self.platform.device
        assert t >= costing.bytes_moved / device.bytes_per_s
        assert t >= costing.flops / device.flops_per_s

    def test_gat_costs_more_than_sage(self):
        kwargs = dict(in_dim=96, hidden_dim=64, out_dim=40, num_layers=2)
        sage = model_costing("sage", 4000, 30_000, **kwargs)
        gat = model_costing("gat", 4000, 30_000, heads=4, **kwargs)
        assert gat.bytes_moved > sage.bytes_moved

    def test_unknown_arch(self):
        with pytest.raises(HardwareError):
            model_costing("mlp", 10, 10, in_dim=4, hidden_dim=4, out_dim=2, num_layers=1)

    def test_batch_time_is_pipeline_max(self):
        assert batch_time(1.0, 2.0, 0.5, 1.0) == 3.0
        assert batch_time(0.1, 0.2, 1.0, 3.0) == 4.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(HardwareError):
            t_sample(-1, self.platform)
        with pytest.raises(HardwareError):
            t_transfer(-1, 10, self.platform)
        with pytest.raises(HardwareError):
            t_replace(-1, 0, 10, self.platform)


class TestMemoryModel:
    def test_gamma_model_counts_optimizer(self):
        plain = gamma_model(1000, optimizer_state_factor=0.0)
        adam = gamma_model(1000, optimizer_state_factor=2.0)
        assert adam == pytest.approx(plain * 2.0)

    def test_gamma_cache_linear(self):
        assert gamma_cache(2000, 100) == pytest.approx(2 * gamma_cache(1000, 100))

    def test_gamma_runtime_attention_adds_edge_buffers(self):
        base = dict(n_attr=96, hidden_dim=64, out_dim=40, num_layers=2)
        plain = gamma_runtime(4000, 30_000, **base)
        gat = gamma_runtime(4000, 30_000, heads=4, attention=True, **base)
        assert gat > plain

    def test_rejects_negative(self):
        with pytest.raises(HardwareError):
            gamma_model(-1)
        with pytest.raises(HardwareError):
            gamma_cache(-1, 10)
        with pytest.raises(HardwareError):
            gamma_runtime(-1, 0, n_attr=1, hidden_dim=1, out_dim=1, num_layers=1)

    def test_breakdown_total(self):
        from repro.hardware import MemoryBreakdown

        b = MemoryBreakdown(model=1.0, cache=2.0, runtime=3.0)
        assert b.total == 6.0
        assert b.total_gib == pytest.approx(6.0 / 1024**3)
