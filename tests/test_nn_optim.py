"""Optimizer and metric tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import SGD, Adam
from repro.nn.metrics import accuracy, confusion_matrix, macro_f1
from repro.nn.module import Parameter


def _quadratic_param(start=5.0):
    return Parameter(np.array([start]))


def _step_quadratic(opt, p, steps=200):
    for _ in range(steps):
        opt.zero_grad()
        # d/dp (p-3)^2 = 2(p-3)
        p.grad = 2.0 * (p.data - 3.0)
        opt.step()
    return float(p.data[0])


class TestSGD:
    def test_converges_on_quadratic(self):
        p = _quadratic_param()
        final = _step_quadratic(SGD([p], lr=0.1), p)
        assert final == pytest.approx(3.0, abs=1e-4)

    def test_momentum_converges(self):
        p = _quadratic_param()
        final = _step_quadratic(SGD([p], lr=0.05, momentum=0.9), p)
        assert final == pytest.approx(3.0, abs=1e-3)

    def test_rejects_bad_momentum(self):
        with pytest.raises(ValueError):
            SGD([_quadratic_param()], lr=0.1, momentum=1.5)

    def test_state_factor(self):
        assert SGD([_quadratic_param()], lr=0.1).state_factor == 0.0
        assert SGD([_quadratic_param()], lr=0.1, momentum=0.5).state_factor == 1.0


class TestAdam:
    def test_converges_on_quadratic(self):
        p = _quadratic_param()
        final = _step_quadratic(Adam([p], lr=0.1), p)
        assert final == pytest.approx(3.0, abs=1e-3)

    def test_skips_none_grads(self):
        p = _quadratic_param()
        opt = Adam([p], lr=0.1)
        before = p.data.copy()
        opt.step()  # no gradient set
        np.testing.assert_array_equal(p.data, before)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([10.0]))
        opt = Adam([p], lr=0.1, weight_decay=0.5)
        for _ in range(100):
            opt.zero_grad()
            p.grad = np.zeros(1)
            opt.step()
        assert abs(float(p.data[0])) < 10.0

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            Adam([_quadratic_param()], lr=-1.0)

    def test_rejects_bad_betas(self):
        with pytest.raises(ValueError):
            Adam([_quadratic_param()], lr=0.1, betas=(1.0, 0.999))

    def test_state_factor_is_two(self):
        assert Adam([_quadratic_param()], lr=0.1).state_factor == 2.0

    def test_zero_grad_clears(self):
        p = _quadratic_param()
        opt = Adam([p], lr=0.1)
        p.grad = np.ones(1)
        opt.zero_grad()
        assert p.grad is None


class TestMetrics:
    def test_accuracy_perfect(self):
        logp = np.log(np.array([[0.9, 0.1], [0.1, 0.9]]))
        assert accuracy(logp, np.array([0, 1])) == 1.0

    def test_accuracy_half(self):
        logp = np.log(np.array([[0.9, 0.1], [0.9, 0.1]]))
        assert accuracy(logp, np.array([0, 1])) == 0.5

    def test_accuracy_empty(self):
        assert accuracy(np.zeros((0, 2)), np.zeros(0, dtype=int)) == 0.0

    def test_accuracy_rejects_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros((2, 2)), np.zeros(3, dtype=int))

    def test_confusion_matrix(self):
        cm = confusion_matrix(np.array([0, 1, 1]), np.array([0, 1, 0]), 2)
        np.testing.assert_array_equal(cm, [[1, 1], [0, 1]])

    def test_macro_f1_perfect(self):
        logp = np.log(np.array([[0.9, 0.1], [0.1, 0.9]]))
        assert macro_f1(logp, np.array([0, 1]), 2) == pytest.approx(1.0)

    def test_macro_f1_skips_absent_classes(self):
        logp = np.log(np.array([[0.9, 0.1, 1e-9], [0.1, 0.9, 1e-9]]))
        # Class 2 absent from targets; F1 averaged over classes 0 and 1 only.
        assert macro_f1(logp, np.array([0, 1]), 3) == pytest.approx(1.0)
