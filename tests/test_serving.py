"""Serving-layer tests: queue, shared scheduler, server lifecycle, CLI."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.config import TaskSpec
from repro.config.space import default_space
from repro.errors import JobFailedError, ServingError
from repro.explorer import GNNavigator
from repro.runtime import ProfilingService
from repro.serving import (
    JobStatus,
    NavigationClient,
    NavigationRequest,
    NavigationServer,
    PriorityJobQueue,
    SharedProfilingService,
)


def _request(task: TaskSpec, **kwargs) -> NavigationRequest:
    kwargs.setdefault("budget", 8)
    kwargs.setdefault("profile_epochs", 1)
    return NavigationRequest(task=task, **kwargs)


@pytest.fixture()
def server_factory(small_graph, tmp_path):
    """Build servers bound to the fixture graph + a tmp store; auto-stop."""
    servers = []

    def build(**kwargs):
        kwargs.setdefault("graphs", {"tiny": small_graph})
        kwargs.setdefault("cache_dir", str(tmp_path / "store"))
        server = NavigationServer(**kwargs)
        servers.append(server)
        return server

    yield build
    for server in servers:
        server.stop()


class TestPriorityJobQueue:
    def test_priority_then_fifo(self):
        q = PriorityJobQueue()
        q.push("low", 0)
        q.push("hi-a", 5)
        q.push("mid", 1)
        q.push("hi-b", 5)
        assert [q.pop(0) for _ in range(4)] == ["hi-a", "hi-b", "mid", "low"]

    def test_pop_timeout_empty(self):
        assert PriorityJobQueue().pop(timeout=0.01) is None

    def test_discard_skips_entry(self):
        q = PriorityJobQueue()
        q.push("a", 0)
        q.push("b", 1)
        q.discard("b")
        assert q.pop(0) == "a"
        assert q.pop(0) is None
        assert len(q) == 0

    def test_closed_queue_rejects_push_and_drains(self):
        q = PriorityJobQueue()
        q.push("a", 0)
        q.close()
        with pytest.raises(ServingError):
            q.push("b", 0)
        assert q.pop() == "a"
        assert q.pop() is None  # closed + empty: no block


class TestRequestSpec:
    def test_round_trip(self):
        request = NavigationRequest(
            task=TaskSpec(dataset="tiny", arch="gcn", epochs=3),
            priorities=("ex_tm", "balance"),
            budget=9,
            priority=4,
            train=True,
            tag="tenant-a",
        )
        clone = NavigationRequest.from_dict(request.to_dict())
        assert clone == request

    def test_task_split_fractions_round_trip(self):
        request = NavigationRequest(
            task=TaskSpec(dataset="tiny", train_frac=0.7, val_frac=0.1),
            budget=8,
        )
        spec = request.to_dict()
        assert spec["train_frac"] == 0.7 and spec["val_frac"] == 0.1
        clone = NavigationRequest.from_dict(spec)
        assert clone.task.train_frac == 0.7
        assert clone.task.val_frac == 0.1
        assert clone == request

    def test_constraint_round_trip(self):
        spec = {"dataset": "tiny", "max_memory_mib": 16.0, "min_accuracy": 0.5}
        request = NavigationRequest.from_dict(spec)
        assert request.constraint.max_memory_bytes == 16.0 * 2**20
        assert request.constraint.min_accuracy == 0.5
        assert request.to_dict()["max_memory_mib"] == 16.0

    def test_rejects_unknown_keys(self):
        with pytest.raises(ServingError):
            NavigationRequest.from_dict({"dataset": "tiny", "budgetx": 9})

    def test_rejects_bad_priorities(self):
        with pytest.raises(ServingError):
            _request(TaskSpec(dataset="tiny"), priorities=("speed",))

    def test_rejects_tiny_budget(self):
        with pytest.raises(ServingError):
            NavigationRequest(task=TaskSpec(dataset="tiny"), budget=2)


class TestSharedProfilingService:
    def test_concurrent_callers_measure_once(self, small_graph, tiny_task):
        shared = SharedProfilingService(ProfilingService())
        configs = [
            c.canonical()
            for c in default_space().sample(6, rng=np.random.default_rng(3))
        ]
        results: list = [None] * 4
        errors: list = []

        def run(slot: int) -> None:
            try:
                results[slot] = shared.profile(
                    tiny_task, configs, graph=small_graph
                )
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors
        unique = len(set(configs))
        assert shared.stats.executed == unique
        assert all(r == results[0] for r in results)


class TestNavigationServer:
    def test_submit_and_result(self, server_factory):
        server = server_factory(workers=2)
        task = TaskSpec(dataset="tiny", arch="sage", epochs=1)
        job_id = server.submit(_request(task))
        result = server.result(job_id, timeout=120)
        assert server.status(job_id) is JobStatus.DONE
        assert "balance" in result.guidelines
        assert result.report.num_ground_truth > 0
        assert result.perf is None  # train not requested

    def test_concurrent_submits_share_store(self, server_factory):
        server = server_factory(workers=2)
        task = TaskSpec(dataset="tiny", arch="sage", epochs=1)
        job_ids = server.submit_many(
            [_request(task, priorities=("balance",)),
             _request(task, priorities=("ex_tm",))]
        )
        jobs = server.drain(timeout=240)
        assert [j.status for j in jobs] == [JobStatus.DONE] * 2
        # Both jobs sample the same candidates (same seed/budget/space):
        # the overlap must be measured once — by execution, not per job.
        results = [server.result(jid) for jid in job_ids]
        n_unique = results[0].report.num_ground_truth
        assert server.stats.executed == n_unique
        assert len(server.store) == n_unique

    def test_cross_task_cache_hit_runs_nothing(self, server_factory):
        task = TaskSpec(dataset="tiny", arch="sage", epochs=1)
        first = server_factory(workers=1)
        first.submit(_request(task))
        first.drain(timeout=240)
        executed = first.stats.executed
        assert executed > 0
        first.stop()

        # A second tenant later in the day: fresh server, same store.
        second = server_factory(workers=1)
        second.submit(_request(task))
        second.drain(timeout=240)
        assert second.stats.executed == 0  # zero training runs
        assert second.stats.cache_hits == executed

    def test_priority_ordering(self, server_factory):
        server = server_factory(workers=1, autostart=False)
        task = TaskSpec(dataset="tiny", arch="sage", epochs=1)
        low = server.submit(_request(task, priority=0))
        high = server.submit(_request(task, priorities=("ex_tm",), priority=9))
        mid = server.submit(_request(task, priorities=("ex_ma",), priority=5))
        server.start()
        server.drain(timeout=240)
        order = {jid: server.job(jid).started_seq for jid in (low, mid, high)}
        assert order[high] < order[mid] < order[low]

    def test_cancel_pending_job(self, server_factory):
        server = server_factory(workers=1, autostart=False)
        task = TaskSpec(dataset="tiny", arch="sage", epochs=1)
        keep = server.submit(_request(task))
        drop = server.submit(_request(task, priorities=("ex_ta",)))
        assert server.cancel(drop) is True
        assert server.status(drop) is JobStatus.CANCELLED
        server.start()
        server.drain(timeout=240)
        assert server.status(keep) is JobStatus.DONE
        assert server.job(drop).started_seq is None  # never ran
        with pytest.raises(ServingError):
            server.result(drop)
        assert server.cancel(keep) is False  # terminal jobs stay put

    def test_failed_job_raises_typed_error(self, server_factory):
        server = server_factory(workers=1)
        job_id = server.submit(
            _request(TaskSpec(dataset="no-such-dataset", epochs=1))
        )
        server.drain(timeout=60)
        assert server.status(job_id) is JobStatus.FAILED
        assert "no-such-dataset" in server.job(job_id).error
        with pytest.raises(JobFailedError) as excinfo:
            server.result(job_id)
        assert excinfo.value.job_id == job_id
        assert "no-such-dataset" in excinfo.value.message
        assert "Traceback" in (excinfo.value.traceback or "")
        # still a ServingError, so coarse handlers keep working
        with pytest.raises(ServingError):
            server.result(job_id)

    def test_snapshot_is_one_consistent_view(self, server_factory):
        server = server_factory(workers=1, autostart=False)
        task = TaskSpec(dataset="tiny", arch="sage", epochs=1)
        job_id = server.submit(_request(task, tenant="team-a", priority=3))
        snapshot = server.snapshot(job_id)
        assert snapshot.status is JobStatus.PENDING
        assert not snapshot.done
        assert snapshot.tenant == "team-a"
        assert snapshot.priority == 3
        assert snapshot.started_at is None
        server.start()
        server.drain(timeout=240)
        after = server.snapshot(job_id)
        assert after.done and after.status is JobStatus.DONE
        assert after.finished_at is not None
        # wire round trip preserves the snapshot exactly
        assert type(after).from_dict(after.to_dict()) == after

    def test_unknown_job_id(self, server_factory):
        server = server_factory()
        with pytest.raises(ServingError):
            server.status("job-9999")

    def test_restart_after_stop(self, server_factory):
        server = server_factory(workers=1)
        task = TaskSpec(dataset="tiny", arch="sage", epochs=1)
        server.stop()
        with pytest.raises(ServingError):
            server.submit(_request(task))  # stopped: rejected cleanly
        server.start()
        job_id = server.submit(_request(task))
        assert server.result(job_id, timeout=240) is not None
        assert server.status(job_id) is JobStatus.DONE


class TestNavigationClient:
    def test_handles_and_batch(self, server_factory):
        server = server_factory(workers=2)
        client = NavigationClient(server, tenant="team-a")
        task = TaskSpec(dataset="tiny", arch="sage", epochs=1)
        handles = client.submit_many(
            [_request(task), _request(task, priorities=("ex_tm",))]
        )
        results = [h.result(timeout=240) for h in handles]
        assert all(h.done for h in handles)
        assert len(results) == 2

    def test_navigate_convenience_tags_tenant(self, server_factory):
        server = server_factory(workers=1)
        client = NavigationClient(server, tenant="team-b")
        task = TaskSpec(dataset="tiny", arch="sage", epochs=1)
        result = client.navigate(
            task, budget=8, profile_epochs=1, timeout=240
        )
        assert "balance" in result.guidelines
        assert server.jobs()[-1].request.tag == "team-b"


class TestNavigatorDelegation:
    def test_profiler_seat_shares_measurements(self, small_graph, tmp_path):
        shared = SharedProfilingService(
            ProfilingService(cache_dir=tmp_path / "store")
        )
        task = TaskSpec(dataset="tiny", arch="sage", epochs=1)
        nav_a = GNNavigator(
            task, graph=small_graph, profile_budget=8, profile_epochs=1,
            profiler=shared,
        )
        nav_a.fit_estimator()
        executed = shared.stats.executed
        assert executed == len(nav_a.records)

        nav_b = GNNavigator(
            task, graph=small_graph, profile_budget=8, profile_epochs=1,
            profiler=shared,
        )
        nav_b.fit_estimator()
        assert shared.stats.executed == executed  # second navigator: all hits
        assert nav_b.records == nav_a.records


class TestServeCLI:
    def test_serve_job_file(
        self, small_graph, tmp_path, capsys, monkeypatch
    ):
        import repro.serving.server as server_mod
        from repro.cli import main

        monkeypatch.setattr(
            server_mod, "load_dataset", lambda name: small_graph
        )
        specs = [
            {"dataset": "tiny", "epochs": 1, "budget": 8, "profile_epochs": 1},
            {
                "dataset": "tiny",
                "epochs": 1,
                "budget": 8,
                "profile_epochs": 1,
                "priorities": ["ex_tm"],
                "priority": 3,
            },
        ]
        jobs_file = tmp_path / "jobs.json"
        jobs_file.write_text(json.dumps(specs))
        code = main(
            [
                "serve",
                "--jobs",
                str(jobs_file),
                "--serve-workers",
                "2",
                "--cache-dir",
                str(tmp_path / "store"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "job-0000" in out and "job-0001" in out
        assert "cache hits" in out

    def test_serve_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--jobs", "-", "--serve-workers", "4", "--no-store"]
        )
        assert args.jobs == "-"
        assert args.serve_workers == 4
        assert args.no_store

    def test_navigate_shared_cache_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["navigate", "--shared-cache"])
        assert args.shared_cache

    def test_network_flags_parse(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--port", "8765", "--host", "0.0.0.0",
             "--store-budget-bytes", "4096"]
        )
        assert args.port == 8765 and args.host == "0.0.0.0"
        assert args.store_budget_bytes == 4096
        assert args.jobs is None  # network mode needs no job file
        args = parser.parse_args(
            ["submit", "--server", "http://127.0.0.1:8765", "--wait",
             "--tenant", "team-a", "--queue-priority", "3"]
        )
        assert args.server == "http://127.0.0.1:8765"
        assert args.wait and args.tenant == "team-a"
        assert args.queue_priority == 3
        args = parser.parse_args(
            ["poll", "--server", "http://x", "job-0000", "job-0001"]
        )
        assert args.job_ids == ["job-0000", "job-0001"]
        args = parser.parse_args(["cancel", "--server", "http://x", "job-0000"])
        assert args.job_ids == ["job-0000"]
        assert parser.parse_args(["stats", "--server", "http://x"]).tenant == ""

    def test_serve_requires_jobs_or_port(self):
        from repro.cli import main

        with pytest.raises(ServingError, match="--jobs .*--port|--port"):
            main(["serve"])
