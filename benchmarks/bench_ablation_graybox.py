"""Ablation — why "gray-box"?  (design choice called out in DESIGN.md)

Compares three estimator variants on held-out ground truth:

* gray-box (paper): analytic Eqs. 4-10 + learned intermediates + residuals;
* white-box only: the same analytics with residual corrections disabled;
* black-box only: forests straight from features to targets.

Expected shape: gray-box wins on the held-out dataset; white-only carries
the right trends but misses constants; black-only overfits the training
datasets' scales.
"""

from __future__ import annotations

import numpy as np

from repro.estimator import BlackBoxEstimator, GrayBoxEstimator, r2_score
from repro.experiments import profiling_records, render_table
from repro.experiments.tasks import estimator_task


def _fold(quick: bool):
    budget, epochs = (16, 2) if quick else (40, 4)
    train = []
    for ds in ("reddit", "ogbn-products"):
        train.extend(
            profiling_records(estimator_task(ds, epochs=epochs), budget=budget)
        )
    test = profiling_records(
        estimator_task("reddit2", epochs=epochs), budget=budget
    )
    return train, test


def _score(estimator, test):
    preds = estimator.predict(
        [r.config for r in test], [r.graph_profile for r in test]
    )
    r2_t = r2_score(
        np.array([r.time_s for r in test]), np.array([p.time_s for p in preds])
    )
    r2_m = r2_score(
        np.array([r.memory_bytes for r in test]),
        np.array([p.memory_bytes for p in preds]),
    )
    return r2_t, r2_m


def test_ablation_graybox_vs_alternatives(run_once, emit, quick):
    def experiment():
        train, test = _fold(quick)
        gray = GrayBoxEstimator().fit(train)
        white = GrayBoxEstimator(use_residuals=False).fit(train)
        black = BlackBoxEstimator().fit(train)
        return {
            "gray-box (paper)": _score(gray, test),
            "white-box only": _score(white, test),
            "black-box only": _score(black, test),
        }

    scores = run_once(experiment)

    rows = [
        [name, f"{r2_t:.4f}", f"{r2_m:.4f}"]
        for name, (r2_t, r2_m) in scores.items()
    ]
    emit()
    emit(
        render_table(
            ["estimator", "R2 Time", "R2 Memory"],
            rows,
            title="Ablation: estimator composition (held-out Reddit2)",
        )
    )
    gray_t, gray_m = scores["gray-box (paper)"]
    if not quick:  # the 16-record quick fold is too small for R2 bands
        assert gray_t >= scores["black-box only"][0] - 0.05
        assert gray_m >= scores["black-box only"][1] - 0.05
        assert gray_t > 0.5 and gray_m > 0.5
