"""Progress-event overhead — emission must be invisible next to the work.

The event subsystem's contract is that observability is (nearly) free:

1. **Emission cost**: one ``EventBuffer.append`` is a deque push under a
   condition variable.  The bench measures it directly and checks that the
   *total* emission time of a served job is under 5% of the job's wall
   clock — the events a job emits are bounded (one per profiling candidate
   plus a handful of phase transitions), so this is the bound that holds
   regardless of machine noise.
2. **Live subscriber**: a watcher long-polling the job's stream must not
   slow the job down — reads take the buffer condition briefly; the
   producer never waits for consumers.  The bench serves the same cold
   workload with and without a live watcher and reports the ratio (the
   wall-clock comparison is noise-sensitive, so the assertion carries a
   small tolerance on top of the 5% target; the per-event bound above is
   the deterministic check).
"""

from __future__ import annotations

import threading
import time

from repro.config.settings import TaskSpec, TrainingConfig
from repro.config.space import DesignSpace
from repro.graphs.generators import powerlaw_community_graph
from repro.serving import NavigationClient, NavigationServer
from repro.serving.events import EventBuffer, JobProgressEvent

APPEND_SAMPLES = 20_000

#: compact space: the job is profiling-bound, the regime events ride along.
SPACE = DesignSpace(
    {
        "batch_size": (32, 64, 128),
        "hop_list": ((3, 2), (5, 3)),
        "cache_ratio": (0.0, 0.25),
        "hidden_channels": (16, 32),
    },
    base=TrainingConfig(),
)


def _workload(quick: bool):
    # The full-mode job must run for whole seconds: the with-subscriber
    # comparison divides two wall clocks, and a sub-second job would put
    # scheduler jitter in the same decade as the 5% bound under test.
    graph = powerlaw_community_graph(
        400 if quick else 2000,
        num_classes=5,
        feature_dim=16 if quick else 32,
        min_degree=3,
        max_degree=60,
        homophily=0.8,
        feature_noise=0.8,
        seed=33,
        name="bench-events",
    )
    epochs = 1 if quick else 3
    task = TaskSpec(dataset="bench-events", arch="sage", epochs=epochs, lr=0.02)
    return graph, task


def _serve_one(
    graph, task, cache_dir, *, budget: int, profile_epochs: int, watcher: bool
):
    """One cold navigation; returns (wall_s, events_emitted, watched)."""
    server = NavigationServer(
        workers=1,
        cache_dir=str(cache_dir),
        graphs={task.dataset: graph},
        space=SPACE,
    )
    try:
        client = NavigationClient(server, tenant="bench")
        seen: list = []
        thread = None
        t0 = time.perf_counter()
        handle = client.submit(
            task,
            priorities=("balance",),
            budget=budget,
            profile_epochs=profile_epochs,
        )
        if watcher:
            thread = threading.Thread(
                target=lambda: seen.extend(handle.watch()), daemon=True
            )
            thread.start()
        handle.result(timeout=600)
        wall = time.perf_counter() - t0
        if thread is not None:
            thread.join(timeout=60)
        emitted = server.metrics.counter("events_emitted")
        return wall, emitted, len(seen)
    finally:
        server.stop()


def test_event_emission_overhead_under_5_percent(run_once, emit, quick, tmp_path):
    budget = 8 if quick else 20
    profile_epochs = 1 if quick else 2

    # -- raw emission cost: a tight append loop on one ring buffer
    buffer = EventBuffer(capacity=256)
    event = JobProgressEvent(
        job_id="job-0000", phase="profiling", status="running",
        runs_done=1, runs_total=16,
    )
    t0 = time.perf_counter()
    for _ in range(APPEND_SAMPLES):
        buffer.append(event)
    per_append_s = (time.perf_counter() - t0) / APPEND_SAMPLES

    # -- the same cold job, without and with a live subscriber
    graph, task = _workload(quick)

    def baseline():
        return _serve_one(
            graph,
            task,
            tmp_path / "plain",
            budget=budget,
            profile_epochs=profile_epochs,
            watcher=False,
        )

    wall_plain, emitted, _ = run_once(baseline)
    wall_watched, emitted_watched, seen = _serve_one(
        graph,
        task,
        tmp_path / "watched",
        budget=budget,
        profile_epochs=profile_epochs,
        watcher=True,
    )

    emission_share = emitted * per_append_s / wall_plain
    ratio = wall_watched / wall_plain
    emit()
    emit(
        f"emission: {per_append_s * 1e6:.2f}us/event x {emitted} events "
        f"= {emission_share * 100:.3f}% of the {wall_plain:.2f}s job"
    )
    emit(
        f"live subscriber: {wall_plain:.2f}s unwatched vs {wall_watched:.2f}s "
        f"watched -> {ratio:.3f}x ({seen} events streamed)"
    )

    # both runs emitted the same stream (same cold store, same job)
    assert emitted == emitted_watched
    # the watcher saw the whole stream, terminal event included
    assert seen == emitted
    # the deterministic bound: emitting every event the job produced costs
    # under 5% of its wall clock (in practice far under 1%)
    assert emission_share < 0.05, (
        f"event emission is {emission_share * 100:.1f}% of job wall clock"
    )
    # the wall-clock comparison carries noise tolerance on top of the 5%
    # target; quick mode (seconds-long jobs) gets a wider band
    bound = 1.35 if quick else 1.05
    assert ratio <= bound, (
        f"live subscriber cost {ratio:.2f}x (bound {bound}x): "
        f"{wall_plain:.2f}s -> {wall_watched:.2f}s"
    )
