"""Benchmark configuration.

Each bench regenerates one table/figure of the paper; the workloads are
whole experiments (minutes, not microseconds), so every bench runs exactly
once via ``benchmark.pedantic(..., rounds=1, iterations=1)`` and prints the
paper-shaped output.  Ground-truth profiling records are cached under
``.cache/`` (see ``repro.experiments.cache``) and shared between benches.

``--quick`` runs every bench in smoke mode: the same code paths on a
fraction of the workload (fewer epochs, smaller budgets), with the
noise-sensitive performance assertions relaxed.  CI's bench-smoke job runs
``pytest benchmarks/bench_*.py --quick --benchmark-json=...`` so a bench
that bit-rots fails a PR even though the full runs are manual.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="run benchmarks on reduced workloads with perf assertions "
        "relaxed (the CI bench-smoke mode)",
    )


@pytest.fixture()
def quick(request) -> bool:
    """Whether this bench run is the reduced CI smoke mode."""
    return request.config.getoption("--quick")


@pytest.fixture()
def run_once(benchmark):
    """Run a zero-argument callable exactly once under pytest-benchmark."""

    def runner(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

    return runner


@pytest.fixture()
def emit(capsys):
    """Print through pytest's capture so tables reach the terminal even
    without ``-s`` (the tee'd bench log must contain the paper tables)."""

    def _emit(*args, **kwargs):
        with capsys.disabled():
            print(*args, **kwargs)

    return _emit
