"""Benchmark configuration.

Each bench regenerates one table/figure of the paper; the workloads are
whole experiments (minutes, not microseconds), so every bench runs exactly
once via ``benchmark.pedantic(..., rounds=1, iterations=1)`` and prints the
paper-shaped output.  Ground-truth profiling records are cached under
``.cache/`` (see ``repro.experiments.cache``) and shared between benches.
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def run_once(benchmark):
    """Run a zero-argument callable exactly once under pytest-benchmark."""

    def runner(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

    return runner


@pytest.fixture()
def emit(capsys):
    """Print through pytest's capture so tables reach the terminal even
    without ``-s`` (the tee'd bench log must contain the paper tables)."""

    def _emit(*args, **kwargs):
        with capsys.disabled():
            print(*args, **kwargs)

    return _emit
