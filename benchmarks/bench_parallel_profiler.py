"""Profiling service — serial vs parallel fan-out, cold vs warm cache.

Ground-truth profiling is the dominant wall-clock cost of a navigation run
(Sec. 4.1 trains the estimator on measurements "covering the whole design
space").  This bench profiles a 32-candidate workload three ways:

(a) serial baseline (the old ``profile_configs`` loop),
(b) 4-worker process fan-out — expected >= 2x faster on >= 4 cores, with
    bit-identical records,
(c) cold vs warm persistent cache — the warm rerun must finish with zero
    training runs.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.config.settings import TaskSpec
from repro.config.space import default_space
from repro.graphs.generators import powerlaw_community_graph
from repro.runtime import ProfilingService, profile_configs

NUM_CANDIDATES = 32
NUM_WORKERS = 4


def _workload(quick: bool):
    graph = powerlaw_community_graph(
        300 if quick else 600,
        num_classes=5,
        feature_dim=16,
        min_degree=3,
        max_degree=50,
        homophily=0.8,
        feature_noise=0.8,
        seed=42,
        name="bench-profiler",
    )
    task = TaskSpec(
        dataset="bench-profiler", arch="sage", epochs=1 if quick else 2, lr=0.02
    )
    rng = np.random.default_rng(0)
    configs = default_space().sample(
        8 if quick else NUM_CANDIDATES, rng=rng
    )
    return task, configs, graph


def test_parallel_fanout_matches_serial(run_once, emit, quick):
    task, configs, graph = _workload(quick)
    num_workers = 2 if quick else NUM_WORKERS

    t0 = time.perf_counter()
    serial = run_once(lambda: profile_configs(task, configs, graph=graph))
    t_serial = time.perf_counter() - t0

    service = ProfilingService(max_workers=num_workers)
    t0 = time.perf_counter()
    parallel = service.profile(task, configs, graph=graph)
    t_parallel = time.perf_counter() - t0

    speedup = t_serial / t_parallel
    emit()
    emit(
        f"profiling {len(configs)} candidates: serial {t_serial:.2f}s, "
        f"{num_workers} workers {t_parallel:.2f}s -> {speedup:.2f}x "
        f"({os.cpu_count()} cores visible)"
    )

    assert parallel == serial, "parallel records must be bit-identical to serial"
    if quick:
        pass  # pool startup dominates an 8-candidate batch; identity is the check
    elif (os.cpu_count() or 1) >= num_workers:
        assert speedup >= 2.0, f"expected >=2x speedup, got {speedup:.2f}x"
    else:
        emit(
            f"note: <{num_workers} cores available; speedup assertion skipped "
            "(fan-out cannot beat serial without parallel hardware)"
        )


def test_warm_cache_runs_nothing(run_once, emit, tmp_path, quick):
    task, configs, graph = _workload(quick)

    cold = ProfilingService(cache_dir=tmp_path)
    t0 = time.perf_counter()
    first = run_once(lambda: cold.profile(task, configs, graph=graph))
    t_cold = time.perf_counter() - t0

    warm = ProfilingService(cache_dir=tmp_path)
    t0 = time.perf_counter()
    second = warm.profile(task, configs, graph=graph)
    t_warm = time.perf_counter() - t0

    emit()
    emit(
        f"persistent cache: cold {t_cold:.2f}s ({cold.stats.executed} runs), "
        f"warm {t_warm:.3f}s ({warm.stats.executed} runs) -> "
        f"{t_cold / max(t_warm, 1e-9):.0f}x"
    )

    assert warm.stats.executed == 0, "warm rerun must execute zero training runs"
    assert warm.stats.cache_hits + warm.stats.deduplicated == len(configs)
    assert second == first
