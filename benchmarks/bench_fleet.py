"""Fleet scaling — navigation throughput vs remote executor count.

The distributed fleet exists because Step-2 ground-truth profiling
dominates navigation wall-clock and shards cleanly by candidate.  This
bench runs the *same* navigation job against the same server config with
1, 2 and 4 remote executors attached — each a real
:class:`~repro.serving.fleet.executor.ProfilingExecutor` pulling leased
batches over the HTTP transport, with a cold store per round — and
reports wall time plus aggregate runs/sec per fleet size.  Full mode
asserts throughput is monotonic from 1 to 2 executors: if the lease
machinery ever serialized the fleet, this is the number that catches it.

Every round must also produce a bit-identical navigation result — the
fleet is a throughput knob, never a semantics knob.
"""

from __future__ import annotations

import os
import time

from repro.config.settings import TaskSpec, TrainingConfig
from repro.config.space import DesignSpace
from repro.graphs.generators import powerlaw_community_graph
from repro.serving import NavigationClient, NavigationServer
from repro.serving.fleet import ProfilingExecutor
from repro.serving.transport import NavigationHTTPServer

#: small claims spread work across the fleet instead of letting the first
#: claimer walk off with the whole batch.
MAX_CANDIDATES = 2

#: overlapping fold, profiling-bound — the regime the fleet is for.
SPACE = DesignSpace(
    {
        "batch_size": (32, 64, 128),
        "hop_list": ((3, 2), (5, 3)),
        "cache_ratio": (0.0, 0.25),
        "hidden_channels": (16, 32),
    },
    base=TrainingConfig(),
)


def _workload(quick: bool):
    # full mode needs per-run cost to dominate claim/commit round trips
    # (~0.8s/run at 6000 nodes x 3 epochs), or the scaling signal drowns
    graph = powerlaw_community_graph(
        400 if quick else 6000,
        num_classes=5,
        feature_dim=16 if quick else 32,
        min_degree=3,
        max_degree=60,
        homophily=0.8,
        feature_noise=0.8,
        seed=42,
        name="bench-fleet",
    )
    task = TaskSpec(
        dataset="bench-fleet",
        arch="sage",
        epochs=1 if quick else 3,
        lr=0.02,
    )
    return graph, task


def _round(graph, task, cache_dir, quick: bool, count: int):
    """One cold navigation with ``count`` executors; returns
    (result, wall seconds, training runs)."""
    server = NavigationServer(
        workers=2,
        cache_dir=str(cache_dir),
        graphs={task.dataset: graph},
        space=SPACE,
        fleet_lease_ttl=5.0,
    )
    executors: list[ProfilingExecutor] = []
    try:
        with NavigationHTTPServer(server) as http:
            for _ in range(count):
                executor = ProfilingExecutor(
                    http.url,
                    # the bench hosts its executors as threads of one
                    # process, so each needs a process *pool* (workers>=2):
                    # training itself is process-isolated but not
                    # thread-concurrent (autograd's grad-mode is global)
                    workers=2,
                    max_candidates=MAX_CANDIDATES,
                    claim_timeout=0.5,
                )
                executor.start()
                executors.append(executor)
            t0 = time.perf_counter()
            result = NavigationClient(server).navigate(
                task,
                budget=8 if quick else 16,
                profile_epochs=1 if quick else 3,
                timeout=600,
            )
            elapsed = time.perf_counter() - t0
    finally:
        for executor in executors:
            executor.stop()
    runs = server.stats.executed
    fallbacks = server.metrics.snapshot().get("fleet_local_fallbacks", 0)
    server.stop()
    return result, elapsed, runs, fallbacks


def test_fleet_throughput_scales_with_executors(run_once, emit, tmp_path, quick):
    graph, task = _workload(quick)
    counts = (1, 2) if quick else (1, 2, 4)

    def sweep():
        return [
            _round(graph, task, tmp_path / f"fleet-{count}", quick, count)
            for count in counts
        ]

    rounds = run_once(sweep)

    emit()
    emit("fleet scaling (cold store per round, same navigation job):")
    for count, (_, elapsed, runs, _) in zip(counts, rounds, strict=True):
        emit(
            f"  {count} executor(s): {elapsed:6.2f}s for {runs} runs "
            f"-> {runs / elapsed:5.2f} runs/sec"
        )

    # the fleet may change wall time, never the answer: every round is
    # bit-identical, did the same number of training runs, and never fell
    # back to the server's local pool
    dicts = [result.to_dict() for result, _, _, _ in rounds]
    assert all(d == dicts[0] for d in dicts[1:])
    assert len({runs for _, _, runs, _ in rounds}) == 1
    assert all(fallbacks == 0 for _, _, _, fallbacks in rounds)

    if not quick:  # sub-second quick rounds put poll latency in the ratio
        t_one, t_two = rounds[0][1], rounds[1][1]
        if (os.cpu_count() or 1) >= 2:
            # the acceptance bound: adding an executor must help
            assert t_two <= t_one, (
                f"2 executors ({t_two:.2f}s) must not be slower than 1 "
                f"({t_one:.2f}s)"
            )
        else:
            # a single core cannot speed up CPU-bound work, but the lease
            # machinery must not make a 2-executor fleet *cost* much — this
            # catches serialization/thrash without asserting the impossible
            emit(
                "  (single-core host: asserting overhead bound, "
                "not speedup)"
            )
            assert t_two <= t_one * 1.5, (
                f"2 executors ({t_two:.2f}s) cost >1.5x of 1 "
                f"({t_one:.2f}s) — fleet overhead, not scheduling, "
                "should dominate"
            )
