"""Ablation — exploration strategy: exhaustive DFS vs local search.

The paper's explorer enumerates the (pruned) space with the cheap estimator.
This ablation measures what a budgeted local search would give up: Pareto
front quality (2-D hypervolume on the time/memory plane) per estimator call.
Expected shape: DFS attains the reference hypervolume; local search recovers
most of it with a fraction of the estimator calls.
"""

from __future__ import annotations

import numpy as np

from repro.config import default_space
from repro.estimator import GrayBoxEstimator
from repro.experiments import profiling_records, render_table
from repro.experiments.tasks import estimator_task
from repro.explorer import (
    DFSExplorer,
    LocalSearchExplorer,
    PRIORITY_PRESETS,
    pareto_mask,
)
from repro.explorer.pareto import hypervolume_2d
from repro.graphs import load_dataset, profile_graph
from repro.hardware import get_platform


def _front_hypervolume(result) -> float:
    objs = result.objectives()[:, :2]  # time, memory plane
    ref = objs.max(axis=0) * 1.1
    return hypervolume_2d(objs[pareto_mask(objs)], ref)


def test_ablation_explorer_strategies(run_once, emit, quick):
    budget, epochs = (16, 2) if quick else (40, 4)

    def experiment():
        records = profiling_records(
            estimator_task("reddit2", epochs=epochs), budget=budget
        )
        estimator = GrayBoxEstimator().fit(records)
        profile = profile_graph(load_dataset("reddit2"))
        platform = get_platform("rtx4090")
        space = default_space()

        dfs = DFSExplorer(space, estimator, profile, platform)
        dfs_result = dfs.explore()

        local = LocalSearchExplorer(
            space,
            estimator,
            profile,
            platform,
            restarts=3 if quick else 6,
            max_steps=10 if quick else 20,
        )
        local_result = local.explore(list(PRIORITY_PRESETS.values()))

        # Hypervolumes on a shared reference derived from the DFS sweep.
        objs = dfs_result.objectives()[:, :2]
        ref = objs.max(axis=0) * 1.1
        hv_dfs = hypervolume_2d(objs[pareto_mask(objs)], ref)
        lobs = local_result.objectives()[:, :2]
        hv_local = hypervolume_2d(lobs[pareto_mask(lobs)], ref)
        return {
            "dfs": (dfs_result.evaluated, hv_dfs),
            "local": (local_result.stats["estimator_calls"], hv_local),
        }

    out = run_once(experiment)

    rows = [
        [name, str(calls), f"{hv:.3e}"]
        for name, (calls, hv) in out.items()
    ]
    emit()
    emit(
        render_table(
            ["strategy", "estimator calls", "hypervolume (T x Γ)"],
            rows,
            title="Ablation: DFS vs budgeted local search (Reddit2+SAGE)",
        )
    )
    calls_dfs, hv_dfs = out["dfs"]
    calls_local, hv_local = out["local"]
    recovery = hv_local / hv_dfs if hv_dfs > 0 else 0.0
    emit(
        f"local search recovers {recovery * 100:.1f}% of DFS hypervolume with "
        f"{calls_local / max(calls_dfs, 1) * 100:.0f}% of the estimator calls"
    )
    assert calls_local < calls_dfs, "local search must be cheaper"
    if not quick:  # a half-budget estimator makes recovery unreliable
        assert recovery > 0.6, "local search must recover most of the front"
