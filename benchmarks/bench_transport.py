"""Transport overhead — HTTP serving vs in-process, and per-call latency.

Two questions the network transport must answer before it earns its place:

1. **Throughput**: for profiling-bound navigation jobs (the serving
   layer's actual workload), multiple tenants submitting over HTTP must
   land within 2x of the same tenants calling the server in-process —
   i.e. the socket may tax the *polls*, not the *work*.
2. **Per-call overhead**: one status snapshot over HTTP costs a full
   request/response round trip; the bench reports the per-call price next
   to the in-process lookup so regressions in the handler path show up as
   a number, not a feeling.

Both sides run cold stores of their own (no cross-talk), the same worker
counts, and the same overlapping design-space fold, so the only variable
is the transport.
"""

from __future__ import annotations

import threading
import time

from repro.config.settings import TaskSpec, TrainingConfig
from repro.config.space import DesignSpace
from repro.graphs.generators import powerlaw_community_graph
from repro.serving import NavigationClient, NavigationServer
from repro.serving.transport import NavigationHTTPServer, RemoteNavigationClient

NUM_TENANTS = 3
BUDGET = 8
PRIORITIES = ["balance", "ex_tm", "ex_ma"]
STATUS_CALLS = 200

#: compact shared space: every tenant samples the same fold, so the jobs
#: are dominated by (shared) Step-2 profiling — the regime the 2x bound
#: is about.
SPACE = DesignSpace(
    {
        "batch_size": (32, 64, 128),
        "hop_list": ((3, 2), (5, 3)),
        "cache_ratio": (0.0, 0.25),
        "hidden_channels": (16, 32),
    },
    base=TrainingConfig(),
)


def _workload(quick: bool):
    graph = powerlaw_community_graph(
        400 if quick else 900,
        num_classes=5,
        feature_dim=16,
        min_degree=3,
        max_degree=60,
        homophily=0.8,
        feature_noise=0.8,
        seed=42,
        name="bench-transport",
    )
    task = TaskSpec(dataset="bench-transport", arch="sage", epochs=1, lr=0.02)
    return graph, task


def _server(graph, task, cache_dir):
    return NavigationServer(
        workers=2,
        cache_dir=str(cache_dir),
        graphs={task.dataset: graph},
        space=SPACE,
    )


def _navigate_all(make_client, task):
    """One thread per tenant, each driving its own client to completion."""
    results: list = [None] * NUM_TENANTS
    errors: list = []

    def run(slot: int) -> None:
        try:
            client = make_client(slot)
            results[slot] = client.navigate(
                task,
                priorities=(PRIORITIES[slot],),
                budget=BUDGET,
                profile_epochs=2,
                timeout=600,
            )
        except Exception as exc:  # pragma: no cover — surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=run, args=(i,)) for i in range(NUM_TENANTS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    return results


def test_remote_throughput_within_2x_of_inprocess(run_once, emit, tmp_path, quick):
    graph, task = _workload(quick)
    status_calls = 50 if quick else STATUS_CALLS

    # -- in-process baseline: same fan-out, clients share the process
    server = _server(graph, task, tmp_path / "inprocess")

    def inprocess():
        return _navigate_all(
            lambda slot: NavigationClient(server, tenant=f"tenant-{slot}"),
            task,
        )

    t0 = time.perf_counter()
    local_results = run_once(inprocess)
    t_local = time.perf_counter() - t0
    local_executed = server.stats.executed
    server.stop()

    # -- remote: identical server behind the HTTP transport, cold store
    server = _server(graph, task, tmp_path / "remote")
    with NavigationHTTPServer(server) as http:
        t0 = time.perf_counter()
        remote_results = _navigate_all(
            lambda slot: RemoteNavigationClient(
                http.url, tenant=f"tenant-{slot}"
            ),
            task,
        )
        t_remote = time.perf_counter() - t0

        # -- per-call overhead: status snapshot, HTTP vs in-process
        handle = RemoteNavigationClient(http.url).submit(
            task, priorities=("balance",), budget=BUDGET, profile_epochs=2
        )
        handle.result(timeout=600)
        t0 = time.perf_counter()
        for _ in range(status_calls):
            handle.status  # noqa: B018 — the property does the round trip
        http_call_s = (time.perf_counter() - t0) / status_calls
        job_id = handle.job_id
        t0 = time.perf_counter()
        for _ in range(status_calls):
            server.snapshot(job_id)
        local_call_s = (time.perf_counter() - t0) / status_calls
    remote_executed = server.stats.executed
    server.stop()

    ratio = t_remote / t_local
    emit()
    emit(
        f"{NUM_TENANTS} tenants, budget {BUDGET}: in-process {t_local:.2f}s, "
        f"HTTP {t_remote:.2f}s -> {ratio:.2f}x "
        f"({NUM_TENANTS / t_remote:.2f} jobs/sec remote)"
    )
    emit(
        f"status call: {local_call_s * 1e6:.0f}us in-process vs "
        f"{http_call_s * 1e6:.0f}us over HTTP "
        f"({http_call_s / max(local_call_s, 1e-9):.0f}x per poll — "
        f"amortized invisible behind profiling-bound jobs)"
    )

    # both transports did the same (shared) profiling work
    assert local_executed == remote_executed
    for local, remote, priority in zip(
        local_results, remote_results, PRIORITIES, strict=True
    ):
        assert set(local.guidelines) == set(remote.guidelines) == {priority}
        # identical fold both sides: the transport changes nothing semantic
        assert (
            remote.report.num_ground_truth == local.report.num_ground_truth
        )
    if not quick:  # sub-second quick jobs put poll latency in the ratio
        # the acceptance bound: HTTP within 2x of in-process for real jobs
        assert ratio <= 2.0, (
            f"HTTP transport cost {ratio:.2f}x over in-process "
            f"(local {t_local:.2f}s vs remote {t_remote:.2f}s)"
        )
        # a single long-poll round trip stays interactive
        assert http_call_s < 0.05, (
            f"status round trip took {http_call_s * 1e3:.1f}ms"
        )
