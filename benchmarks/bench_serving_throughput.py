"""Serving layer — N overlapping tenants vs serial private-cache runs.

Four tenants ask for guidelines on the same task with different objective
priorities (the paper's Table 1 modes).  Every tenant's Step-2 profiling
samples the same design-space fold, so a serial run with cold private
caches measures the fold four times; the server measures it once and serves
the other three tenants from the shared store/in-flight table.  The bench
asserts the >= 2x wall-clock reduction that amortization buys even on a
single core (it is work elimination, not parallelism) and reports jobs/sec
plus the cache-hit breakdown.
"""

from __future__ import annotations

import time

from repro.config.settings import TaskSpec, TrainingConfig
from repro.config.space import DesignSpace
from repro.explorer import GNNavigator
from repro.graphs.generators import powerlaw_community_graph
from repro.serving import NavigationRequest, NavigationServer

NUM_TENANTS = 4
BUDGET = 16
PRIORITIES = ["balance", "ex_tm", "ex_ma", "ex_ta"]

#: one server-wide space for every tenant (what makes their samples overlap);
#: compact enough that DFS exploration is cheap next to the training runs the
#: profiling step executes — the regime the paper's Step 2 lives in.
SPACE = DesignSpace(
    {
        "batch_size": (32, 64, 128, 256),
        "hop_list": ((3, 2), (5, 3), (10, 5)),
        "cache_ratio": (0.0, 0.25),
        "hidden_channels": (16, 32),
    },
    base=TrainingConfig(),
)


def _workload(quick: bool):
    graph = powerlaw_community_graph(
        500 if quick else 1500,
        num_classes=6,
        feature_dim=24,
        min_degree=3,
        max_degree=80,
        homophily=0.8,
        feature_noise=0.8,
        seed=42,
        name="bench-serving",
    )
    task = TaskSpec(
        dataset="bench-serving", arch="sage", epochs=1 if quick else 2, lr=0.02
    )
    requests = [
        NavigationRequest(
            task=task,
            priorities=(priority,),
            budget=8 if quick else BUDGET,
            profile_epochs=1 if quick else 3,
            tag=f"tenant-{i}",
        )
        for i, priority in enumerate(PRIORITIES)
    ]
    return graph, task, requests


def test_shared_serving_beats_serial_private(run_once, emit, tmp_path, quick):
    graph, task, requests = _workload(quick)

    # -- serial baseline: each tenant is a fresh navigator, cold private cache
    def serial():
        reports = []
        for request in requests:
            navigator = GNNavigator(
                task,
                space=SPACE,
                graph=graph,
                profile_budget=request.budget,
                profile_epochs=request.profile_epochs,
                seed=request.seed,
            )
            reports.append(
                navigator.explore(priorities=list(request.priorities))
            )
        return reports

    t0 = time.perf_counter()
    run_once(serial)
    t_serial = time.perf_counter() - t0

    # -- served: one shared store, overlapping samples measured once
    server = NavigationServer(
        workers=2,
        cache_dir=str(tmp_path / "store"),
        graphs={task.dataset: graph},
        space=SPACE,
    )
    t0 = time.perf_counter()
    job_ids = server.submit_many(requests)
    jobs = server.drain()
    t_shared = time.perf_counter() - t0
    results = [server.result(jid) for jid in job_ids]
    stats = server.stats
    server.stop()

    total_candidates = sum(r.report.num_ground_truth for r in results)
    speedup = t_serial / t_shared
    emit()
    emit(
        f"{NUM_TENANTS} overlapping tenants: serial+private {t_serial:.2f}s, "
        f"served+shared {t_shared:.2f}s -> {speedup:.2f}x "
        f"({NUM_TENANTS / t_shared:.2f} jobs/sec)"
    )
    emit(
        f"amortization: {total_candidates} candidate evaluations requested, "
        f"{stats.executed} executed, {stats.cache_hits} cache hits, "
        f"{stats.shared_inflight} shared in-flight, "
        f"{stats.deduplicated} deduplicated"
    )

    assert all(job.status.value == "done" for job in jobs)
    # every tenant got its own objective's guideline
    for request, result in zip(requests, results, strict=True):
        assert set(result.guidelines) == set(request.priorities)
    # the fold was measured once, not NUM_TENANTS times
    assert stats.executed == results[0].report.num_ground_truth
    assert stats.executed < total_candidates
    if not quick:  # seconds-long quick jobs put startup cost in the ratio
        assert speedup >= 2.0, (
            f"expected >=2x from cross-tenant amortization, got {speedup:.2f}x "
            f"(serial {t_serial:.2f}s vs shared {t_shared:.2f}s)"
        )
    # same task + seed => identical ground truth behind every tenant's fit
    assert all(
        r.report.num_ground_truth == results[0].report.num_ground_truth
        for r in results
    )

    # -- warm restart: a new server on the same store runs nothing at all
    warm = NavigationServer(
        workers=1,
        cache_dir=str(tmp_path / "store"),
        graphs={task.dataset: graph},
        space=SPACE,
    )
    t0 = time.perf_counter()
    warm.submit_many(requests)
    warm.drain()
    t_warm = time.perf_counter() - t0
    emit(
        f"warm restart: {t_warm:.2f}s, {warm.stats.executed} training runs "
        f"({warm.stats.cache_hits} cache hits)"
    )
    warm.stop()
    assert warm.stats.executed == 0
