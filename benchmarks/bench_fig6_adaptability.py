"""Fig. 6 — adaptability validation on Reddit2+SAGE.

The reduced design space is exhausted by real execution; the candidates are
projected on the (time, memory) and (memory, accuracy) planes with their
Pareto fronts, and GNNavigator's guidelines must land on (or within 5% of)
the measured fronts — the paper's "provided guidelines perfectly match the
actual Pareto front".
"""

from __future__ import annotations

from repro.experiments import render_table, run_fig6
from repro.experiments.tasks import NAVIGATOR_MODES


def test_fig6_guidelines_on_pareto_front(run_once, emit, quick):
    result = run_once(lambda: run_fig6(epochs=2 if quick else 4))

    # Plane (a): epoch time vs memory.  Plane (b): memory vs accuracy.
    for plane_name, axes in [("time vs memory", (0, 1)), ("memory vs accuracy", (1, 2))]:
        front = result.front_indices(axes)
        rows = []
        for idx in front:
            r = result.records[idx]
            rows.append(
                [
                    f"{r.time_s * 1e3:.2f}",
                    f"{r.memory_bytes / 1024**2:.1f}",
                    f"{r.accuracy * 100:.1f}%",
                    r.config.describe(),
                ]
            )
        emit()
        emit(
            render_table(
                ["T (ms)", "Γ (MiB)", "Acc", "config"],
                rows,
                title=f"Fig. 6 Pareto front, plane: {plane_name} "
                f"({len(result.records)} executed candidates)",
            )
        )

    emit()
    for mode in NAVIGATOR_MODES:
        idx = result.guideline_indices[mode]
        r = result.records[idx]
        emit(
            f"guideline {mode:8s}: T={r.time_s * 1e3:.2f}ms "
            f"Γ={r.memory_bytes / 1024**2:.1f}MiB Acc={r.accuracy * 100:.1f}% "
            f"3D-nondominated={result.guideline_nondominated(mode)} "
            f"on-front(a)={result.guideline_on_front(mode, (0, 1))} "
            f"on-front(b)={result.guideline_on_front(mode, (1, 2))}"
        )
    emit("paper shape: Bal/Ex guidelines sit on the measured Pareto front")

    # Every guideline must be Pareto-optimal in the full (T, Γ, Acc) space;
    # the plane-emphasising modes must additionally sit on their plane's
    # measured 2-D front (a 3-D front point may legitimately project off a
    # plane it does not prioritise).
    if not quick:  # the half-epoch quick sweep blurs the measured fronts
        for mode in NAVIGATOR_MODES:
            assert result.guideline_nondominated(mode), f"{mode} dominated in 3-D"
        assert result.guideline_on_front("ex_tm", (0, 1)), "Ex-TM off the T/Γ front"
        assert result.guideline_on_front("ex_ma", (1, 2)), "Ex-MA off the Γ/Acc front"
