"""Fig. 1 — profiling existing GNN training frameworks.

(a) PaGraph's speedup depends on extra memory: epoch time falls as the
    static cache grows.  Expected shape: monotone time decrease, monotone
    memory increase across the cache-ratio sweep.
(b) 2PGraph is substantially faster per epoch than memory-constrained
    PaGraph but converges a few percent lower (paper: 2.45x, -3%).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import render_table, run_fig1a, run_fig1b


def test_fig1a_pagraph_tradeoff(run_once, emit, quick):
    if quick:
        points = run_once(
            lambda: run_fig1a(epochs=1, cache_ratios=(0.0, 0.25, 0.75))
        )
    else:
        points = run_once(lambda: run_fig1a(epochs=3))

    rows = [
        [
            f"{p.cache_ratio:.2f}",
            f"{p.memory_mib:.1f}",
            f"{p.epoch_time_ms:.2f}",
            f"{p.hit_rate * 100:.0f}%",
        ]
        for p in points
    ]
    emit()
    emit(
        render_table(
            ["cache ratio", "Memory (MiB)", "Epoch Time (ms)", "hit rate"],
            rows,
            title="Fig. 1(a): PaGraph speedup/memory trade-off (Reddit2+SAGE)",
        )
    )
    speedup = points[0].epoch_time_ms / points[-1].epoch_time_ms
    emit(f"max speedup from caching: {speedup:.2f}x "
          f"(paper shape: multi-x speedup as memory grows)")

    times = [p.epoch_time_ms for p in points]
    mems = [p.memory_mib for p in points]
    assert all(m1 <= m2 for m1, m2 in zip(mems, mems[1:], strict=False)), "memory must rise"
    if not quick:  # single-epoch timings are too noisy for monotonicity
        assert all(t1 >= t2 for t1, t2 in zip(times, times[1:], strict=False)), "time must fall"
        assert speedup > 1.5


def test_fig1b_2pgraph_vs_pagraph(run_once, emit, quick):
    curves = run_once(lambda: run_fig1b(epochs=2 if quick else 6))

    by_method = {c.method: c for c in curves}
    pa, twop = by_method["pagraph_low"], by_method["2pgraph"]
    rows = []
    for epoch in range(len(pa.epoch_times_ms)):
        rows.append(
            [
                str(epoch),
                f"{pa.epoch_times_ms[epoch]:.1f}",
                f"{pa.accuracies[epoch] * 100:.1f}%",
                f"{twop.epoch_times_ms[epoch]:.1f}",
                f"{twop.accuracies[epoch] * 100:.1f}%",
            ]
        )
    emit()
    emit(
        render_table(
            ["epoch", "PaGraph T(ms)", "PaGraph acc", "2PGraph T(ms)", "2PGraph acc"],
            rows,
            title="Fig. 1(b): 2PGraph vs PaGraph epoch time and accuracy",
        )
    )
    speedup = np.mean(pa.epoch_times_ms) / np.mean(twop.epoch_times_ms)
    drop = pa.final_accuracy - twop.final_accuracy
    emit(
        f"2PGraph speedup {speedup:.2f}x (paper: 2.45x), "
        f"accuracy drop {drop * 100:.1f}pp (paper: ~3pp)"
    )
    if not quick:  # two epochs of convergence cannot carry these bands
        assert speedup > 1.5, (
            "2PGraph must be clearly faster than constrained PaGraph"
        )
        assert drop > 0.0, "2PGraph trades accuracy for speed"
