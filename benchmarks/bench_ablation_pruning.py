"""Ablation — DFS constraint pruning (Sec. 3.3's exploration accelerator).

Runs the same constrained exploration with and without subtree pruning.
Expected shape: pruning removes a significant share of leaf visits while the
surviving feasible candidate set (and hence the chosen guidelines) stays
equivalent.
"""

from __future__ import annotations

import time

from repro.config import default_space
from repro.experiments import profiling_records, render_table
from repro.experiments.tasks import estimator_task
from repro.explorer import DFSExplorer, RuntimeConstraint
from repro.estimator import GrayBoxEstimator
from repro.graphs import load_dataset, profile_graph
from repro.hardware import get_platform


def test_ablation_constraint_pruning(run_once, emit, quick):
    budget, epochs = (16, 2) if quick else (40, 4)

    def experiment():
        records = profiling_records(
            estimator_task("reddit2", epochs=epochs), budget=budget
        )
        estimator = GrayBoxEstimator().fit(records)
        profile = profile_graph(load_dataset("reddit2"))
        explorer = DFSExplorer(
            default_space(), estimator, profile, get_platform("rtx4090")
        )
        # A deliberately tight deployment box.
        times = [r.time_s for r in records]
        constraint = RuntimeConstraint(
            max_time_s=sorted(times)[len(times) // 4],
            min_accuracy=0.5,
        )
        out = {}
        for prune in (False, True):
            t0 = time.perf_counter()
            result = explorer.explore(constraint=constraint, prune=prune)
            out[prune] = {
                "wall_s": time.perf_counter() - t0,
                "visited": result.visited_leaves,
                "pruned": result.pruned_subtrees,
                "feasible": set(result.candidates),
            }
        return out

    out = run_once(experiment)

    rows = [
        [
            "with pruning" if prune else "no pruning",
            f"{stats['visited']}",
            f"{stats['pruned']}",
            f"{len(stats['feasible'])}",
            f"{stats['wall_s']:.2f}",
        ]
        for prune, stats in sorted(out.items())
    ]
    emit()
    emit(
        render_table(
            ["mode", "leaves visited", "subtrees pruned", "feasible", "wall (s)"],
            rows,
            title="Ablation: DFS constraint pruning (Reddit2+SAGE, tight budget)",
        )
    )
    assert out[True]["visited"] < out[False]["visited"], "pruning must cut visits"
    assert out[True]["pruned"] > 0
    # Pruning must not lose feasible candidates that survive the final filter
    # (it may keep a superset pruned only at coarser granularity).
    assert out[True]["feasible"] <= out[False]["feasible"]
    recall = len(out[True]["feasible"]) / max(len(out[False]["feasible"]), 1)
    emit(f"feasible-set recall under pruning: {recall * 100:.1f}%")
    if not quick:  # a weak quick-mode estimator blurs the recall band
        assert recall > 0.7
