"""Fair-share scheduling — per-tenant latency under a skewed 4-tenant load.

One chatty tenant burst-submits high-priority jobs; three quiet tenants ask
for one low-priority navigation each.  Under the default pure-priority
policy the burst front-runs the queue and every quiet tenant waits for the
whole burst to drain; with ``fairness=True`` the server round-robins across
tenant lanes, so each quiet tenant's single job runs inside the first
scheduling cycle.  The bench reports p50/p95 completion latency (submit ->
terminal) per tenant for both policies and asserts fair-share cuts the
starved tenants' p95.

Jobs use distinct seeds so their Step-2 samples are mostly distinct; the
residual overlap (coinciding draws from the compact space, plus the
baseline templates every job profiles) is shared through the in-memory
layer under *both* policies.  That sharing biases the comparison
conservatively: under pure priority the quiet jobs run last, against the
warmest cache, which shrinks — never inflates — the starvation gap the
bench asserts on.  Both servers run memory-only (no persistent store) so
neither policy inherits the other's measurements.
"""

from __future__ import annotations

import numpy as np

from repro.config.settings import TaskSpec, TrainingConfig
from repro.config.space import DesignSpace
from repro.graphs.generators import powerlaw_community_graph
from repro.serving import NavigationRequest, NavigationServer

CHATTY_TENANT = "burst"
CHATTY_JOBS = 6
QUIET_TENANTS = ["quiet-a", "quiet-b", "quiet-c"]
BUDGET = 8

#: compact server-wide space: exploration stays cheap next to the profiling
#: runs, so completion latency is dominated by scheduling order.
SPACE = DesignSpace(
    {
        "batch_size": (32, 64, 128),
        "hop_list": ((3, 2), (5, 3)),
        "cache_ratio": (0.0, 0.25),
        "hidden_channels": (16, 32),
    },
    base=TrainingConfig(),
)


def _workload(chatty_jobs: int = CHATTY_JOBS):
    graph = powerlaw_community_graph(
        600,
        num_classes=5,
        feature_dim=16,
        min_degree=3,
        max_degree=50,
        homophily=0.8,
        feature_noise=0.8,
        seed=21,
        name="bench-fair",
    )
    task = TaskSpec(dataset="bench-fair", arch="sage", epochs=1, lr=0.02)
    requests = [
        NavigationRequest(
            task=task,
            budget=BUDGET,
            profile_epochs=1,
            seed=i,
            priority=9,
            tenant=CHATTY_TENANT,
            tag=CHATTY_TENANT,
        )
        for i in range(chatty_jobs)
    ]
    requests += [
        NavigationRequest(
            task=task,
            budget=BUDGET,
            profile_epochs=1,
            seed=100 + i,
            priority=0,
            tenant=tenant,
            tag=tenant,
        )
        for i, tenant in enumerate(QUIET_TENANTS)
    ]
    return graph, task, requests


def _serve(graph, task, requests, *, fairness: bool) -> dict[str, list[float]]:
    """Run the workload; completion latency (s) per tenant, submit order kept."""
    server = NavigationServer(
        workers=1,
        cache_dir=None,
        graphs={task.dataset: graph},
        space=SPACE,
        autostart=False,
        fairness=fairness,
    )
    job_ids = server.submit_many(requests)
    server.start()
    server.drain()
    latencies: dict[str, list[float]] = {}
    for job_id in job_ids:
        job = server.job(job_id)
        assert job.status.value == "done", job.describe()
        latencies.setdefault(job.request.tenant, []).append(
            job.finished_at - job.submitted_at
        )
    server.stop()
    return latencies


def _percentiles(latencies: dict[str, list[float]]):
    return {
        tenant: (
            float(np.percentile(values, 50)),
            float(np.percentile(values, 95)),
        )
        for tenant, values in latencies.items()
    }


def test_fair_share_unstarves_quiet_tenants(run_once, emit, quick):
    chatty_jobs = 3 if quick else CHATTY_JOBS
    graph, task, requests = _workload(chatty_jobs)

    def both_policies():
        return (
            _serve(graph, task, requests, fairness=False),
            _serve(graph, task, requests, fairness=True),
        )

    by_priority, by_fairshare = run_once(both_policies)
    prio = _percentiles(by_priority)
    fair = _percentiles(by_fairshare)

    emit()
    emit(
        f"skewed load: {chatty_jobs} priority-9 jobs from '{CHATTY_TENANT}' "
        f"vs 1 priority-0 job from each of {len(QUIET_TENANTS)} quiet tenants"
    )
    emit(f"{'tenant':<10} {'jobs':>4}  {'prio p50/p95 (s)':>18}  {'fair p50/p95 (s)':>18}")
    for tenant in [CHATTY_TENANT] + QUIET_TENANTS:
        n = len(by_priority[tenant])
        p50p, p95p = prio[tenant]
        p50f, p95f = fair[tenant]
        emit(
            f"{tenant:<10} {n:>4}  {p50p:>8.2f}/{p95p:<8.2f}  "
            f"{p50f:>8.2f}/{p95f:<8.2f}"
        )

    quiet_prio = [v for t in QUIET_TENANTS for v in by_priority[t]]
    quiet_fair = [v for t in QUIET_TENANTS for v in by_fairshare[t]]
    p95_prio = float(np.percentile(quiet_prio, 95))
    p95_fair = float(np.percentile(quiet_fair, 95))
    emit(
        f"starved tenants p95: {p95_prio:.2f}s under pure priority -> "
        f"{p95_fair:.2f}s under fair-share "
        f"({p95_prio / p95_fair:.2f}x better)"
    )

    # pure priority runs the whole burst first: every quiet job waits for
    # all six chatty jobs; fair-share hands each quiet lane a slot per
    # cycle, so even the slowest quiet job beats the priority-policy p95
    assert p95_fair < p95_prio, (
        f"fair-share should cut the starved tenants' p95 "
        f"({p95_fair:.2f}s vs {p95_prio:.2f}s)"
    )
    # under fair-share every quiet lane drains while the burst still has
    # jobs queued — the chatty tenant, not the quiet ones, absorbs the wait
    assert max(quiet_fair) < max(by_fairshare[CHATTY_TENANT])
