"""Cross-task transfer — warm-start navigation vs cold (repro.transfer).

Seeds a ground-truth corpus by navigating donor tasks from one synthetic
task family, then navigates a held-out sibling task twice: cold (no
transfer) and warm (corpus-backed ``TransferContext``).  Reports ground
truth runs, Step-2 wall clock, and the *measured* performance of each
chosen guideline — the regret check that the saved runs didn't buy a worse
configuration.  Expected shape: the warm start profiles >=30% fewer
candidates with the chosen config's measured time inside the cold
tolerance band.
"""

from __future__ import annotations

import time

from repro.config import TaskSpec
from repro.experiments import render_table
from repro.explorer.navigator import GNNavigator
from repro.graphs.generators import powerlaw_community_graph
from repro.runtime.parallel import ResultStore
from repro.transfer import TransferContext, TransferCorpus, TransferPolicy


def _family_graph(seed: int, nodes: int, name: str):
    """One member of a synthetic task family (shared shape, fresh draw)."""
    return powerlaw_community_graph(
        nodes,
        num_classes=4,
        feature_dim=16,
        homophily=0.7,
        feature_noise=0.4,
        seed=seed,
        name=name,
    )


def _navigate(task, graph, *, budget, epochs, transfer=None, cache_dir=None):
    navigator = GNNavigator(
        task,
        graph=graph,
        profile_budget=budget,
        profile_epochs=epochs,
        seed=0,
        cache_dir=cache_dir,
        transfer=transfer,
    )
    start = time.perf_counter()
    report = navigator.explore(priorities=["balance"])
    elapsed = time.perf_counter() - start
    return navigator, report, elapsed


def test_transfer_warm_vs_cold(run_once, emit, quick, tmp_path):
    budget = 12 if quick else 24
    epochs = 1 if quick else 2
    nodes = 130 if quick else 300
    donors = 1 if quick else 3
    store_dir = str(tmp_path / "corpus")

    def experiment():
        # --- seed the corpus with donor navigations (records persisted)
        for i in range(donors):
            donor_task = TaskSpec(dataset=f"fam-{i}", arch="sage", epochs=2)
            donor_graph = _family_graph(i + 1, nodes + 10 * i, f"fam-{i}")
            _navigate(
                donor_task,
                donor_graph,
                budget=budget,
                epochs=epochs,
                cache_dir=store_dir,
            )

        target_task = TaskSpec(dataset="fam-target", arch="sage", epochs=2)
        target_graph = _family_graph(99, nodes + 5, "fam-target")

        cold_nav, cold_report, cold_s = _navigate(
            target_task, target_graph, budget=budget, epochs=epochs
        )

        corpus = TransferCorpus(ResultStore(store_dir))
        context = TransferContext(
            corpus, policy=TransferPolicy(min_similarity=0.2)
        )
        warm_nav, warm_report, warm_s = _navigate(
            target_task, target_graph, budget=budget, epochs=epochs,
            transfer=context,
        )

        out = {}
        for mode, nav, report, elapsed in (
            ("cold", cold_nav, cold_report, cold_s),
            ("warm", warm_nav, warm_report, warm_s),
        ):
            guideline = report.guidelines["balance"]
            measured = nav.apply(guideline)  # Step 3: regret on ground truth
            out[mode] = {
                "runs": len(nav.records),
                "wall_s": elapsed,
                "config": guideline.config.describe(),
                "time_ms": measured.time_s * 1e3,
                "accuracy": measured.accuracy,
                "transfer": report.extras.get("transfer"),
            }
        return out

    results = run_once(experiment)
    cold, warm = results["cold"], results["warm"]

    emit()
    emit(
        render_table(
            ["mode", "gt runs", "step-2 wall (s)", "measured time (ms)",
             "measured acc", "chosen config"],
            [
                [mode, str(r["runs"]), f"{r['wall_s']:.2f}",
                 f"{r['time_ms']:.2f}", f"{r['accuracy'] * 100:.1f}%",
                 r["config"]]
                for mode, r in results.items()
            ],
            title="Cross-task transfer: warm start vs cold",
        )
    )
    saved = cold["runs"] - warm["runs"]
    emit(
        f"runs saved: {saved}/{cold['runs']} "
        f"({saved / cold['runs'] * 100:.0f}%), plan: {warm['transfer']}"
    )

    assert warm["transfer"] is not None, "warm navigation never planned"
    assert warm["runs"] < cold["runs"]
    if not quick:
        # The acceptance bar: >=30% fewer ground-truth runs, with the chosen
        # config's measured epoch time inside a generous regret band (the
        # synthetic family is noisy at this scale).
        assert saved >= 0.3 * cold["runs"]
        assert warm["time_ms"] <= cold["time_ms"] * 1.5
        assert warm["accuracy"] >= cold["accuracy"] - 0.1
