"""Table 2 — precision of the gray-box performance estimator.

Leave-one-dataset-out over Reddit / Reddit2 / Ogbn-products with power-law
augmentation.  Paper bands: R2(T) 0.73-0.84, R2(Γ) 0.73-0.98, MSE(Acc)
0.016-0.029.  Expected shape: R2 scores approaching 1, MSE(Acc) small.
"""

from __future__ import annotations

from repro.experiments import render_table2, run_table2


def test_table2_estimator_precision(run_once, emit, quick):
    if quick:
        results = run_once(
            lambda: run_table2(budget=16, epochs=2, with_augmentation=False)
        )
    else:
        results = run_once(lambda: run_table2())

    emit()
    emit(render_table2(results))
    emit(
        "paper bands: R2(T) in [0.73, 0.84], R2(Γ) in [0.73, 0.98], "
        "MSE(Acc) <= 0.03"
    )

    for r in results:
        if quick:  # the 16-record un-augmented fold cannot carry R2 bands
            assert r.mse_accuracy < 0.5, f"{r.dataset}: accuracy MSE degenerate"
            continue
        assert r.r2_time > 0.5, f"{r.dataset}: time estimation too weak"
        assert r.r2_memory > 0.5, f"{r.dataset}: memory estimation too weak"
        assert r.mse_accuracy < 0.05, f"{r.dataset}: accuracy MSE too high"
