"""Ablation — device-cache policy x ratio (transmission category).

Sweeps the cache policy (none/static/fifo/lru) against the cache ratio on
Reddit2+SAGE with random batch order, reporting hit rate and epoch time.
Expected shape: static (degree-priority) dominates at small ratios on a
power-law graph; every policy converges as the cache approaches the graph
size; no cache is always slowest.
"""

from __future__ import annotations

from repro.config import TaskSpec, get_template
from repro.experiments import render_table
from repro.runtime import RuntimeBackend


def test_ablation_cache_policies(run_once, emit, quick):
    policies = ("none", "static", "fifo", "lru")
    ratios = (0.1, 0.5) if quick else (0.1, 0.3, 0.5)

    def experiment():
        task = TaskSpec(dataset="reddit2", arch="sage", epochs=1 if quick else 3)
        results = {}
        for policy in policies:
            for ratio in ratios:
                if policy == "none" and ratio != ratios[0]:
                    continue
                config = get_template(
                    "pyg",
                    cache_policy=policy,
                    cache_ratio=0.0 if policy == "none" else ratio,
                )
                report = RuntimeBackend(task, config).train()
                results[(policy, ratio)] = (
                    report.mean_hit_rate,
                    report.time_s * 1e3,
                )
        return results

    results = run_once(experiment)

    rows = []
    for (policy, ratio), (hit, time_ms) in sorted(results.items()):
        label_ratio = "-" if policy == "none" else f"{ratio:.1f}"
        rows.append([policy, label_ratio, f"{hit * 100:.0f}%", f"{time_ms:.2f}"])
    emit()
    emit(
        render_table(
            ["policy", "cache ratio", "hit rate", "epoch time (ms)"],
            rows,
            title="Ablation: cache policy x ratio (Reddit2+SAGE)",
        )
    )

    no_cache_time = results[("none", ratios[0])][1]
    if not quick:  # single-epoch timings are too noisy for a 2% band
        for policy in ("static", "fifo", "lru"):
            for ratio in ratios:
                assert results[(policy, ratio)][1] <= no_cache_time * 1.02

    # Degree-priority static caching must win at the smallest ratio on a
    # power-law graph (hubs dominate sampled batches).
    small = {p: results[(p, ratios[0])][0] for p in ("static", "fifo", "lru")}
    emit(f"hit rates at ratio {ratios[0]}: {small}")
    assert small["static"] >= max(small["fifo"], small["lru"]) - 0.02
