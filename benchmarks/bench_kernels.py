"""SpMM kernel backend sweep — raw throughput and end-to-end loss parity.

Two benches over every registered kernel (``docs/kernels.md``):

1. Raw spmm throughput on the largest synthetic dataset's normalized
   adjacency.  Full mode asserts the thread-parallel kernel beats
   ``reference`` when the host actually has cores to parallelise over
   (``os.cpu_count() >= 2``) — the container CI runs single-core, where
   the kernel's serial fallback makes the comparison meaningless.
2. An end-to-end training sweep asserting the semantics contract that
   makes the backend pluggable at all: ``reference`` reproduces the
   pre-refactor spmm path bit-identically (losses and accuracy), and the
   optimized kernels track the same loss trajectory within float32
   reassociation tolerance.  These asserts hold in ``--quick`` mode too —
   they are correctness, not performance.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace

import numpy as np

from repro.autograd.sparse import normalized_adjacency
from repro.autograd.tensor import Tensor, no_grad
from repro.config.settings import KERNEL_NAMES, TaskSpec, TrainingConfig
from repro.graphs.datasets import load_dataset
from repro.runtime.backend import RuntimeBackend
from repro.runtime.kernels import get_kernel, kernel_counters, reset_kernel_counters

#: optimized kernels reassociate float32 sums; the loss trajectory may
#: drift by at most this much from the reference run.
LOSS_TOL = 1e-3

CONFIG = TrainingConfig(batch_size=256, hidden_channels=32, cache_ratio=0.25)


def _table(emit, header, rows):
    widths = [max(len(str(r[i])) for r in [header, *rows]) for i in range(len(header))]
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    emit(fmt.format(*header))
    emit(fmt.format(*("-" * w for w in widths)))
    for row in rows:
        emit(fmt.format(*row))


def test_raw_spmm_throughput(run_once, emit, quick):
    # products is the zoo's largest graph (~20x-scaled ogbn-products);
    # quick mode downshifts to arxiv so CI still exercises every kernel.
    graph = load_dataset("ogbn-arxiv" if quick else "ogbn-products")
    matrix = normalized_adjacency(
        graph.indptr, graph.indices, graph.num_nodes, mode="sym"
    )
    x = Tensor(
        np.random.default_rng(0)
        .standard_normal((graph.num_nodes, 64))
        .astype(np.float32)
    )
    reps = 3 if quick else 10

    def sweep():
        seconds = {}
        for name in KERNEL_NAMES:
            kernel = get_kernel(name)
            with no_grad():
                kernel.spmm(matrix, x)  # warm the per-matrix plan cache
                t0 = time.perf_counter()
                for _ in range(reps):
                    kernel.spmm(matrix, x)
                seconds[name] = (time.perf_counter() - t0) / reps
        return seconds

    seconds = run_once(sweep)
    ref = seconds["reference"]
    _table(
        emit,
        ("kernel", "ms/spmm", "vs reference"),
        [
            (name, f"{s * 1e3:.2f}", f"{ref / s:.2f}x")
            for name, s in seconds.items()
        ],
    )
    emit(
        f"[bench-kernels] graph={graph.name} nodes={graph.num_nodes} "
        f"edges={graph.num_edges} cpus={os.cpu_count()} reps={reps}"
    )
    if not quick and (os.cpu_count() or 1) >= 2:
        assert seconds["parallel"] < ref, (
            "thread-parallel spmm should beat reference on "
            f"{graph.name} with {os.cpu_count()} cpus: "
            f"{seconds['parallel']:.4f}s vs {ref:.4f}s"
        )


def _train(graph, task, kernel_name, *, legacy=False):
    reset_kernel_counters()
    backend = RuntimeBackend(
        task, replace(CONFIG, kernel=kernel_name), graph=graph
    )
    if legacy:
        # Pre-refactor A/B: drop the kernel so Propagation routes every
        # aggregation through the original autograd.sparse.spmm path.
        backend.kernel = None
        backend._full_prop.kernel = None
    t0 = time.perf_counter()
    report = backend.train()
    wall = time.perf_counter() - t0
    counters = kernel_counters().get(kernel_name, {})
    return {
        "wall": wall,
        "losses": np.array([e.loss for e in report.epochs]),
        "accuracy": report.accuracy,
        "spmm_calls": int(counters.get("calls", 0)),
        "spmm_s": counters.get("seconds", 0.0),
    }


def test_training_loss_parity_across_kernels(run_once, emit, quick):
    graph = load_dataset("ogbn-arxiv")
    task = TaskSpec(
        dataset="ogbn-arxiv", arch="gcn", epochs=1 if quick else 3, lr=0.02
    )

    def sweep():
        legacy = _train(graph, task, "reference", legacy=True)
        return legacy, {name: _train(graph, task, name) for name in KERNEL_NAMES}

    legacy, runs = run_once(sweep)
    _table(
        emit,
        ("kernel", "wall s", "acc", "spmm calls", "spmm s", "max|dloss|"),
        [
            (
                "(legacy)",
                f"{legacy['wall']:.2f}",
                f"{legacy['accuracy']:.3f}",
                "-",
                "-",
                "-",
            ),
            *(
                (
                    name,
                    f"{r['wall']:.2f}",
                    f"{r['accuracy']:.3f}",
                    r["spmm_calls"],
                    f"{r['spmm_s']:.3f}",
                    f"{np.abs(r['losses'] - legacy['losses']).max():.2e}",
                )
                for name, r in runs.items()
            ),
        ],
    )

    reference = runs["reference"]
    assert np.array_equal(reference["losses"], legacy["losses"]), (
        "reference kernel must be bit-identical to the pre-refactor path"
    )
    assert reference["accuracy"] == legacy["accuracy"]
    assert reference["spmm_calls"] > 0  # the refactored path actually ran
    for name, run in runs.items():
        if name == "reference":
            continue
        drift = float(np.abs(run["losses"] - legacy["losses"]).max())
        assert drift < LOSS_TOL, f"{name} loss trajectory drifted by {drift}"
