"""Fig. 5 — gray-box vs black-box mini-batch size prediction.

Expected shape: the gray-box model's scatter hugs the measured values
(high R2, low relative error) while the pure decision-tree baseline
disperses on the held-out dataset.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import render_table, run_fig5


def test_fig5_batch_size_models(run_once, emit, quick):
    if quick:
        result = run_once(
            lambda: run_fig5(
                target="reddit2", budget=16, epochs=2, with_augmentation=False
            )
        )
    else:
        result = run_once(lambda: run_fig5(target="reddit2"))

    order = np.argsort(result.measured)
    rows = [
        [
            f"{result.measured[i]:.0f}",
            f"{result.predicted_gray[i]:.0f}",
            f"{result.predicted_black[i]:.0f}",
        ]
        for i in order[:: max(1, len(order) // 12)]
    ]
    emit()
    emit(
        render_table(
            ["measured |Vi|", "gray-box pred", "black-box pred"],
            rows,
            title="Fig. 5: mini-batch size prediction on held-out Reddit2",
        )
    )
    emit(
        f"gray-box : R2={result.r2_gray:.4f}  "
        f"mean rel err={result.mean_rel_error_gray * 100:.1f}%"
    )
    emit(
        f"black-box: R2={result.r2_black:.4f}  "
        f"mean rel err={result.mean_rel_error_black * 100:.1f}%"
    )
    emit("paper shape: gray-box points sit on the y=x line, black-box scatters")

    if not quick:  # the un-augmented 16-record quick fold is too small
        assert result.r2_gray > 0.8, "gray-box must track measured sizes closely"
        assert result.r2_gray > result.r2_black, "gray-box must beat the black box"
        assert result.mean_rel_error_gray < result.mean_rel_error_black
