"""Table 1 — overall performance of GNNavigator across tasks.

Expected shapes (who wins, by roughly what factor — not absolute numbers):

* Pa-Full beats PyG on time by consuming extra memory; Pa-Low barely helps.
* 2P is among the fastest baselines but loses accuracy.
* Bal matches or beats the baselines on every metric simultaneously.
* Ex-TM is the fastest/leanest mode, conceding a few points of accuracy
  (paper: up to 3.1x speedup, 44.9% memory cut, -2.8% accuracy).
* Ex-MA achieves the best accuracy; on AR+GAT (device-bound) every method's
  speedup collapses toward 1x.
"""

from __future__ import annotations

from repro.experiments import render_table1, run_table1


def test_table1_overall_performance(run_once, emit, quick):
    if quick:
        blocks = run_once(
            lambda: run_table1(epochs=2, profile_budget=16, profile_epochs=2)
        )
    else:
        blocks = run_once(lambda: run_table1(epochs=8))

    emit()
    emit(render_table1(blocks))

    if quick:
        # Quick mode checks the pipeline end to end (all tasks, all modes,
        # a rendered table); the performance shapes below need the full
        # epoch counts to hold reliably.
        assert {b.arch for b in blocks} >= {"sage", "gat"}
        assert all(b.row("balance").time_s > 0 for b in blocks)
        return

    for block in blocks:
        base = block.baseline
        pa_full = block.row("pagraph_full")
        pa_low = block.row("pagraph_low")
        bal = block.row("balance")
        ex_tm = block.row("ex_tm")
        ex_ma = block.row("ex_ma")

        # Static caching buys time with memory (visible off the GAT block,
        # where compute-bound training mutes every transmission knob).
        assert pa_full.time_s <= base.time_s
        assert pa_full.memory_bytes >= base.memory_bytes
        assert pa_full.time_s <= pa_low.time_s

        # GNNavigator guidelines: Bal never slower than PyG, accuracy within
        # noise of the best baseline (measured accuracy wobbles ~1pp with
        # batch order); Ex-TM at least as fast as every baseline with a
        # bounded accuracy concession.
        assert bal.time_s <= base.time_s * 1.02
        best_baseline_acc = max(
            block.row(m).accuracy
            for m in ("pyg", "pagraph_full", "pagraph_low", "2pgraph")
        )
        assert bal.accuracy >= best_baseline_acc - 0.035
        assert ex_tm.time_s <= min(pa_full.time_s, base.time_s) * 1.02
        assert ex_tm.accuracy >= base.accuracy - 0.10
        assert ex_ma.accuracy >= best_baseline_acc - 0.03

    sage_blocks = [b for b in blocks if b.arch == "sage"]
    best_speedup = max(
        b.baseline.time_s / b.row("ex_tm").time_s for b in sage_blocks
    )
    emit(f"\nbest Ex-TM speedup over PyG: {best_speedup:.2f}x (paper: up to 3.1x)")
    assert best_speedup > 2.0, "Ex-TM must deliver a multi-x speedup on SAGE tasks"

    # AR+GAT: the paper's testbed is compute-bound here (speedups ~1.0-1.2x).
    # Our ~20x-scaled testbed keeps feature transfer significant even for
    # GAT (documented divergence in EXPERIMENTS.md), so we assert the
    # invariants that do survive the scaling: baseline accuracy is flat and
    # baseline caching never exceeds the SAGE-task benefit it gives.
    gat_block = next(b for b in blocks if b.arch == "gat")
    gat_speedups = {
        m: gat_block.baseline.time_s / gat_block.row(m).time_s
        for m in ("pagraph_full", "2pgraph", "balance")
    }
    emit(
        "AR+GAT speedups (Pa-Full, 2P, Bal): "
        + ", ".join(f"{s:.2f}x" for s in gat_speedups.values())
        + "  (paper: ~1.0-1.2x; see EXPERIMENTS.md on this divergence)"
    )
    baseline_accs = [
        gat_block.row(m).accuracy
        for m in ("pyg", "pagraph_full", "pagraph_low", "2pgraph")
    ]
    assert max(baseline_accs) - min(baseline_accs) < 0.03, (
        "GAT baseline accuracy must stay flat across transmission knobs"
    )
    sage_pa_speedups = [
        b.baseline.time_s / b.row("pagraph_full").time_s for b in sage_blocks
    ]
    assert gat_speedups["pagraph_full"] <= max(sage_pa_speedups) * 1.1, (
        "caching must not help GAT more than it helps the SAGE tasks"
    )
