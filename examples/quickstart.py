"""Quickstart: let GNNavigator tune GNN training for you.

Given a dataset, a model architecture and a platform, GNNavigator profiles a
sample of the design space, fits its gray-box performance estimator, explores
the space, and returns a training guideline matched to your priority.  The
guideline is then executed on the reconfigurable runtime backend.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.config import TaskSpec
from repro.explorer import GNNavigator


def main() -> None:
    # The application: train GraphSAGE on (the synthetic stand-in for)
    # Reddit2, on an RTX 4090-class platform, for 6 epochs.
    task = TaskSpec(dataset="reddit2", arch="sage", platform="rtx4090", epochs=6)

    # Budget: profile 16 design-space samples for the estimator.  Larger
    # budgets sharpen the estimator (the paper profiles the whole space).
    navigator = GNNavigator(task, profile_budget=16, profile_epochs=3)

    print("Step 1-2: profiling design-space samples and exploring...")
    report = navigator.explore(priorities=["balance", "ex_tm"])
    for _name, guideline in report.guidelines.items():
        print(f"  {guideline.describe()}")

    print("\nStep 3: training with the balanced guideline...")
    guideline = report.guidelines["balance"]
    perf = navigator.apply(guideline)
    print(f"  measured: {perf.summary()}")

    print("\nFor comparison, vanilla PyG-style training:")
    from repro.config import get_template

    baseline = navigator.apply(get_template("pyg"))
    print(f"  measured: {baseline.summary()}")
    print(
        f"\nGNNavigator speedup: {baseline.time_s / perf.time_s:.2f}x, "
        f"memory {perf.memory.total / baseline.memory.total * 100 - 100:+.1f}%, "
        f"accuracy {perf.accuracy - baseline.accuracy:+.3f}"
    )


if __name__ == "__main__":
    main()
