"""Adaptive deployment: one application, two very different platforms.

The same GNN application (GraphSAGE on ogbn-products) must run both in a
datacenter (A100, time-critical inference refresh) and on an edge server
("M90", hard device-memory ceiling).  GNNavigator adapts the guideline to
each scenario's constraints and priorities — the paper's core adaptability
claim (Sec. 4.3).

Run:  python examples/adaptive_deployment.py
"""

from __future__ import annotations

from repro.config import TaskSpec
from repro.explorer import GNNavigator, RuntimeConstraint


def navigate(platform: str, priority: str, constraint: RuntimeConstraint):
    task = TaskSpec(dataset="ogbn-products", arch="sage", platform=platform, epochs=5)
    nav = GNNavigator(task, profile_budget=16, profile_epochs=3)
    report = nav.explore(constraint=constraint, priorities=[priority])
    guideline = report.guidelines[priority]
    measured = nav.apply(guideline)
    return guideline, measured


def main() -> None:
    print("Scenario A: datacenter A100, minimise epoch time, accuracy floor 70%")
    g_dc, m_dc = navigate(
        "a100",
        "ex_ta",
        RuntimeConstraint(min_accuracy=0.70),
    )
    print(f"  guideline: {g_dc.describe()}")
    print(f"  measured : {m_dc.summary()}")

    print("\nScenario B: edge M90, device memory capped at 8 MiB, balance metrics")
    g_edge, m_edge = navigate(
        "m90",
        "balance",
        RuntimeConstraint(max_memory_bytes=8 * 1024 * 1024),
    )
    print(f"  guideline: {g_edge.describe()}")
    print(f"  measured : {m_edge.summary()}")

    print(
        "\nSame application, different guidelines: the datacenter run leans on "
        "a large cache and generous fanouts, the edge run shrinks the batch "
        "and cache to fit the memory ceiling."
    )
    assert m_edge.memory.total <= 9 * 1024 * 1024, "edge memory budget blown"


if __name__ == "__main__":
    main()
