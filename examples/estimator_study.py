"""Inside the gray-box estimator: predictions vs reality.

Profiles a set of configurations on (the synthetic stand-in for) Reddit2,
fits the gray-box estimator, then checks its predictions on configurations
it has never executed — including the Eq. 12 mini-batch size model against
the pure black-box decision tree (the Fig. 5 comparison).

Run:  python examples/estimator_study.py
"""

from __future__ import annotations

import numpy as np

from repro.config import TaskSpec, default_space
from repro.estimator import GrayBoxEstimator, r2_score
from repro.estimator.batchsize import BlackBoxBatchSizeModel, GrayBoxBatchSizeModel
from repro.experiments import render_table
from repro.runtime import profile_configs


def main() -> None:
    task = TaskSpec(dataset="reddit2", arch="sage", epochs=3)
    space = default_space()
    rng = np.random.default_rng(7)

    print("profiling 24 training configurations for ground truth...")
    train_records = profile_configs(task, space.sample(24, rng=rng))
    print("profiling 8 held-out configurations...")
    test_records = profile_configs(task, space.sample(8, rng=np.random.default_rng(99)))

    estimator = GrayBoxEstimator().fit(train_records)
    preds = estimator.predict(
        [r.config for r in test_records],
        [r.graph_profile for r in test_records],
    )

    rows = []
    for record, pred in zip(test_records, preds, strict=True):
        rows.append(
            [
                record.config.describe()[:46],
                f"{record.time_s * 1e3:.2f}",
                f"{pred.time_s * 1e3:.2f}",
                f"{record.memory_bytes / 1024**2:.1f}",
                f"{pred.memory_bytes / 1024**2:.1f}",
            ]
        )
    print()
    print(
        render_table(
            ["config", "T meas", "T pred", "Γ meas", "Γ pred"],
            rows,
            title="Gray-box estimator on unseen configurations (ms / MiB)",
        )
    )
    t_r2 = r2_score(
        np.array([r.time_s for r in test_records]),
        np.array([p.time_s for p in preds]),
    )
    print(f"held-out R2 on epoch time: {t_r2:.3f}")

    # Fig. 5 in miniature: batch-size prediction, gray vs black.
    configs = [r.config for r in train_records]
    profiles = [r.graph_profile for r in train_records]
    sizes = np.array([r.mean_batch_nodes for r in train_records])
    gray = GrayBoxBatchSizeModel().fit(configs, profiles, sizes)
    black = BlackBoxBatchSizeModel().fit(configs, profiles, sizes)
    test_configs = [r.config for r in test_records]
    test_profiles = [r.graph_profile for r in test_records]
    measured = np.array([r.mean_batch_nodes for r in test_records])
    err_gray = np.abs(gray.predict(test_configs, test_profiles) - measured)
    err_black = np.abs(black.predict(test_configs, test_profiles) - measured)
    print(
        f"|Vi| mean abs error: gray-box {err_gray.mean():.0f} vertices, "
        f"black-box {err_black.mean():.0f} vertices"
    )


if __name__ == "__main__":
    main()
