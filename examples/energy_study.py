"""Energy and time-to-accuracy: the deployment metrics beyond Perf(T, Γ, Acc).

Runs the baseline templates on Reddit2+SAGE, charges per-phase energy with
the platform power model, and reports the simulated time needed to reach a
validation-accuracy target — the metric a deployment engineer actually pays
for.  Caching shows up twice: fewer transferred bits (link energy) and
shorter epochs (host/device active time).

Run:  python examples/energy_study.py
"""

from __future__ import annotations

from repro.config import TaskSpec, get_template, template_names
from repro.experiments import render_table
from repro.hardware import EnergyModel, get_platform
from repro.runtime import RuntimeBackend


def main() -> None:
    task = TaskSpec(dataset="reddit2", arch="sage", epochs=6)
    platform = get_platform(task.platform)
    energy_model = EnergyModel(platform)
    target_acc = 0.70

    rows = []
    for name in template_names():
        backend = RuntimeBackend(task, get_template(name))
        report = backend.train(keep_batch_records=True)
        energy = energy_model.records_energy(
            report.batches, backend.graph.feature_dim
        )
        tta = report.time_to_accuracy(target_acc)
        rows.append(
            [
                name,
                f"{report.time_s * 1e3:.2f}",
                f"{energy.total_j / task.epochs:.2f}",
                f"{energy.link_j * 1e3 / task.epochs:.2f}",
                f"{tta * 1e3:.1f}" if tta is not None else "not reached",
                f"{report.accuracy * 100:.1f}%",
            ]
        )

    print(
        render_table(
            [
                "template",
                "epoch time (ms)",
                "energy/epoch (J)",
                "link energy/epoch (mJ)",
                f"time to {target_acc:.0%} acc (ms)",
                "final acc",
            ],
            rows,
            title=f"Energy and time-to-accuracy on {task.dataset}+{task.arch} "
            f"({platform.device.name})",
        )
    )
    print(
        "\nCaching cuts link energy directly (fewer transferred bits) and "
        "total energy via shorter epochs; biased sampling compounds both."
    )


if __name__ == "__main__":
    main()
