"""Reproducing existing systems by reconfiguration (paper Fig. 3).

GNNavigator's claim: the reconfigurable runtime backend reproduces PyG,
PaGraph, 2PGraph and GraphSAINT *by configuration alone* — no code changes.
This example runs every template on the same task and prints the resulting
trade-off table: PaGraph trades memory for time, 2PGraph trades accuracy for
time, SAINT changes the training regime entirely.

Run:  python examples/reproduce_baselines.py
"""

from __future__ import annotations

from repro.config import TaskSpec, get_template, template_names
from repro.experiments import render_table
from repro.runtime import RuntimeBackend


def main() -> None:
    task = TaskSpec(dataset="reddit2", arch="sage", epochs=5)
    rows = []
    baseline_time = None
    for name in template_names():
        config = get_template(name)
        print(f"running {name:14s} -> {config.describe()}")
        report = RuntimeBackend(task, config).train()
        if name == "pyg":
            baseline_time = report.time_s
        rows.append(
            [
                name,
                f"{report.time_s * 1e3:.2f}",
                f"{report.memory.total / 1024**2:.1f}",
                f"{report.accuracy * 100:.2f}%",
                f"{report.mean_hit_rate * 100:.0f}%",
            ]
        )

    print()
    print(
        render_table(
            ["template", "epoch time (ms)", "memory (MiB)", "accuracy", "cache hits"],
            rows,
            title=f"Baseline templates on {task.dataset}+{task.arch}",
        )
    )
    if baseline_time is not None:
        print(
            "\nEvery system is one configuration of the same backend — "
            "compare the columns to see each system's signature trade-off."
        )


if __name__ == "__main__":
    main()
