"""Legacy setup shim: the offline environment lacks the ``wheel`` package, so
``pip install -e .`` must use the setuptools legacy editable path."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "GNNavigator (DAC 2024) reproduction: adaptive GNN training via "
        "automatic guideline exploration"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)
